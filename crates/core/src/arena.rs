//! Struct-of-arrays prototype storage — the serving-path data layout.
//!
//! The paper's `O(dK)` serving claim (Algorithms 2–3) makes the
//! winner/overlap scan over the `K` prototypes the hot loop of every
//! prediction. The original layout — a `Vec<Prototype>` where each
//! prototype owns its `center`/`b_x` heap allocations — pays a pointer
//! chase per prototype per query. The [`PrototypeArena`] instead packs the
//! parameter triplets `α_k = (w_k, y_k, b_k)` into six contiguous,
//! dimension-strided blocks:
//!
//! ```text
//! centers   [x_0 | x_1 | … | x_{K−1}]   K·d
//! radii     [θ_0, θ_1, …, θ_{K−1}]      K
//! ys        [y_0, y_1, …, y_{K−1}]      K
//! b_xs      [b_0 | b_1 | … | b_{K−1}]   K·d
//! b_thetas  [bΘ_0, …, bΘ_{K−1}]         K
//! updates   [n_0, …, n_{K−1}]           K
//! ```
//!
//! so the winner search and the overlap scan stream linearly through
//! memory as single fused passes over the 4-row batched distance kernel
//! ([`regq_linalg::vector::sq_dists4`]; the store-side scans route
//! through its sibling `sq_dist_within_batch`). All batched
//! results are **bit-identical** to the per-prototype scalar path (the
//! kernels perform the same additions in the same order), which the
//! `arena_equivalence` proptests pin.
//!
//! [`crate::prototype::Prototype`] remains the *owned* exchange form used
//! at the API edges (persistence, codebook surgery, snapshots); on the
//! serving path it is reduced to the borrowed views [`PrototypeRef`] /
//! [`PrototypeRefMut`] over the arena blocks.

use crate::prototype::Prototype;
use crate::query::Query;
use regq_linalg::simd;
use regq_linalg::tune::{self, QUAD, QUERY_BLOCK, ROW_TILE};
use regq_linalg::vector;
use serde::{Deserialize, Serialize};

/// The result of one fused batched winner/overlap pass
/// ([`PrototypeArena::resolve_batch`]): per query, the winner `(index,
/// squared joint distance)` and the overlap neighborhood `W(q)` as CSR
/// `(offsets, entries)` slices. Reusable — internal buffers are
/// retained across calls, so a serving thread resolves batches
/// allocation-free in steady state.
#[derive(Debug, Default)]
pub struct BatchResolution {
    winners: Vec<(usize, f64)>,
    offsets: Vec<usize>,
    entries: Vec<(usize, f64)>,
    // Scratch (retained capacity, contents meaningless between calls).
    block_sets: Vec<Vec<(usize, f64)>>,
    // Pruned-path screening scratch ([`BlockLayout::resolve_batch_pruned`]):
    // one expanded-distance row, per-block bounds/flags for one query, and
    // the per-(query, block) survivor mask for one query chunk.
    screen: Vec<f64>,
    lbs: Vec<f64>,
    ovl: Vec<bool>,
    survive: Vec<bool>,
}

impl BatchResolution {
    /// Empty resolution ready to be filled by
    /// [`PrototypeArena::resolve_batch`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resolved queries.
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// `true` when no queries are resolved.
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// Winner `(index, squared joint distance)` of query `i` — identical
    /// to [`PrototypeArena::winner`] for the same query.
    pub fn winner(&self, i: usize) -> (usize, f64) {
        self.winners[i]
    }

    /// Overlap neighborhood `W(q_i)` in ascending prototype index —
    /// identical to [`PrototypeArena::overlap_set_into`] for the same
    /// query.
    pub fn overlap(&self, i: usize) -> &[(usize, f64)] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }

    fn clear(&mut self) {
        self.winners.clear();
        self.offsets.clear();
        self.entries.clear();
    }
}

/// Contiguous struct-of-arrays storage for `K` prototypes of dimension `d`.
///
/// Invariants: `centers.len() == b_xs.len() == len·dim` and
/// `radii/ys/b_thetas/updates` all have length `len`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrototypeArena {
    dim: usize,
    len: usize,
    centers: Vec<f64>,
    radii: Vec<f64>,
    ys: Vec<f64>,
    b_xs: Vec<f64>,
    b_thetas: Vec<f64>,
    updates: Vec<u64>,
}

/// Borrowed view of one prototype's parameter triplet (the serving-path
/// replacement for `&Prototype`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrototypeRef<'a> {
    /// Prototype center `x_k`.
    pub center: &'a [f64],
    /// Prototype radius `θ_k`.
    pub radius: f64,
    /// Local intercept `y_k`.
    pub y: f64,
    /// Local slope over the input coordinates, `b_{X,k}`.
    pub b_x: &'a [f64],
    /// Local slope over the radius coordinate, `b_{Θ,k}`.
    pub b_theta: f64,
    /// SGD update count.
    pub updates: u64,
}

impl PrototypeRef<'_> {
    /// Materialize an owned [`Prototype`] from this view.
    pub fn to_prototype(&self) -> Prototype {
        Prototype {
            center: self.center.to_vec(),
            radius: self.radius,
            y: self.y,
            b_x: self.b_x.to_vec(),
            b_theta: self.b_theta,
            updates: self.updates,
        }
    }
}

/// Mutable view of one prototype (training and codebook surgery).
#[derive(Debug)]
pub struct PrototypeRefMut<'a> {
    /// Prototype center `x_k`.
    pub center: &'a mut [f64],
    /// Prototype radius `θ_k`.
    pub radius: &'a mut f64,
    /// Local intercept `y_k`.
    pub y: &'a mut f64,
    /// Local slope over the input coordinates, `b_{X,k}`.
    pub b_x: &'a mut [f64],
    /// Local slope over the radius coordinate, `b_{Θ,k}`.
    pub b_theta: &'a mut f64,
    /// SGD update count.
    pub updates: &'a mut u64,
}

impl PrototypeArena {
    /// Empty arena for prototypes of dimension `dim` (`dim ≥ 1`).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "PrototypeArena requires dim >= 1");
        PrototypeArena {
            dim,
            len: 0,
            centers: Vec::new(),
            radii: Vec::new(),
            ys: Vec::new(),
            b_xs: Vec::new(),
            b_thetas: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Build from owned prototypes (persistence / model reconstruction).
    ///
    /// # Panics
    /// Panics if any prototype's `center` or `b_x` length differs from
    /// `dim` (callers validate first and surface a typed error).
    pub fn from_prototypes(dim: usize, protos: &[Prototype]) -> Self {
        let mut arena = Self::new(dim);
        for p in protos {
            arena.push(p);
        }
        arena
    }

    /// Number of prototypes `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the arena holds no prototypes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Input dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed center block (`len·dim`, dimension-strided).
    #[inline]
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// The radius block.
    #[inline]
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// The update-count block.
    #[inline]
    pub fn update_counts(&self) -> &[u64] {
        &self.updates
    }

    /// Center of prototype `k`.
    #[inline]
    pub fn center(&self, k: usize) -> &[f64] {
        &self.centers[k * self.dim..(k + 1) * self.dim]
    }

    /// Radius of prototype `k`.
    #[inline]
    pub fn radius(&self, k: usize) -> f64 {
        self.radii[k]
    }

    /// Intercept of prototype `k`.
    #[inline]
    pub fn y(&self, k: usize) -> f64 {
        self.ys[k]
    }

    /// Input slope row of prototype `k`.
    #[inline]
    pub fn b_x(&self, k: usize) -> &[f64] {
        &self.b_xs[k * self.dim..(k + 1) * self.dim]
    }

    /// Radius slope of prototype `k`.
    #[inline]
    pub fn b_theta(&self, k: usize) -> f64 {
        self.b_thetas[k]
    }

    /// Update count of prototype `k`.
    #[inline]
    pub fn updates(&self, k: usize) -> u64 {
        self.updates[k]
    }

    /// Borrowed view of prototype `k`.
    #[inline]
    pub fn view(&self, k: usize) -> PrototypeRef<'_> {
        PrototypeRef {
            center: self.center(k),
            radius: self.radii[k],
            y: self.ys[k],
            b_x: self.b_x(k),
            b_theta: self.b_thetas[k],
            updates: self.updates[k],
        }
    }

    /// Mutable view of prototype `k`.
    #[inline]
    pub fn view_mut(&mut self, k: usize) -> PrototypeRefMut<'_> {
        let d = self.dim;
        PrototypeRefMut {
            center: &mut self.centers[k * d..(k + 1) * d],
            radius: &mut self.radii[k],
            y: &mut self.ys[k],
            b_x: &mut self.b_xs[k * d..(k + 1) * d],
            b_theta: &mut self.b_thetas[k],
            updates: &mut self.updates[k],
        }
    }

    /// Iterate over all prototypes as borrowed views.
    pub fn iter(&self) -> impl Iterator<Item = PrototypeRef<'_>> {
        (0..self.len).map(|k| self.view(k))
    }

    /// Materialize the whole codebook as owned prototypes (API-edge
    /// snapshot — allocates; never used on the serving path).
    pub fn to_prototypes(&self) -> Vec<Prototype> {
        self.iter().map(|p| p.to_prototype()).collect()
    }

    /// Append a prototype spawned from a query: zero-initialized
    /// coefficients, `updates = 1` (Algorithm 1 init / design decision
    /// D-4 — see [`Prototype::from_query`]).
    pub fn push_query(&mut self, center: &[f64], radius: f64) {
        assert_eq!(center.len(), self.dim, "push_query: dimension mismatch");
        self.centers.extend_from_slice(center);
        self.radii.push(radius);
        self.ys.push(0.0);
        self.b_xs.resize(self.b_xs.len() + self.dim, 0.0);
        self.b_thetas.push(0.0);
        self.updates.push(1);
        self.len += 1;
    }

    /// Append an owned prototype.
    ///
    /// # Panics
    /// Panics on a `center`/`b_x` length mismatch with the arena dimension.
    pub fn push(&mut self, p: &Prototype) {
        assert_eq!(p.center.len(), self.dim, "push: center dimension mismatch");
        assert_eq!(p.b_x.len(), self.dim, "push: slope dimension mismatch");
        self.centers.extend_from_slice(&p.center);
        self.radii.push(p.radius);
        self.ys.push(p.y);
        self.b_xs.extend_from_slice(&p.b_x);
        self.b_thetas.push(p.b_theta);
        self.updates.push(p.updates);
        self.len += 1;
    }

    /// Remove prototype `k`, shifting later prototypes down (`O(K·d)`;
    /// codebook surgery only, never the serving path).
    pub fn remove(&mut self, k: usize) {
        assert!(k < self.len, "remove: index out of bounds");
        let d = self.dim;
        self.centers.drain(k * d..(k + 1) * d);
        self.b_xs.drain(k * d..(k + 1) * d);
        self.radii.remove(k);
        self.ys.remove(k);
        self.b_thetas.remove(k);
        self.updates.remove(k);
        self.len -= 1;
    }

    /// Keep only the prototypes for which `f` returns `true`, preserving
    /// order (in-place compaction; codebook surgery only).
    pub fn retain(&mut self, mut f: impl FnMut(PrototypeRef<'_>) -> bool) {
        let mask: Vec<bool> = (0..self.len).map(|k| f(self.view(k))).collect();
        let d = self.dim;
        let mut w = 0usize;
        for (k, &keep) in mask.iter().enumerate() {
            if !keep {
                continue;
            }
            if w != k {
                self.centers.copy_within(k * d..(k + 1) * d, w * d);
                self.b_xs.copy_within(k * d..(k + 1) * d, w * d);
                self.radii[w] = self.radii[k];
                self.ys[w] = self.ys[k];
                self.b_thetas[w] = self.b_thetas[k];
                self.updates[w] = self.updates[k];
            }
            w += 1;
        }
        self.centers.truncate(w * d);
        self.b_xs.truncate(w * d);
        self.radii.truncate(w);
        self.ys.truncate(w);
        self.b_thetas.truncate(w);
        self.updates.truncate(w);
        self.len = w;
    }

    /// Evaluate the LLM of prototype `k` at `(x, θ)` (Eq. 5/12) —
    /// bit-identical to [`Prototype::eval`].
    #[inline]
    pub fn eval(&self, k: usize, x: &[f64], theta: f64) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        let mut v = self.ys[k] + self.b_thetas[k] * (theta - self.radii[k]);
        for ((bi, xi), ci) in self.b_x(k).iter().zip(x.iter()).zip(self.center(k).iter()) {
            v += bi * (xi - ci);
        }
        v
    }

    /// Evaluate the LLM of prototype `k` at its own radius (Theorem 3 /
    /// Eq. 13) — bit-identical to [`Prototype::eval_at_own_radius`].
    #[inline]
    pub fn eval_at_own_radius(&self, k: usize, x: &[f64]) -> f64 {
        self.eval(k, x, self.radii[k])
    }

    /// The Theorem-3 local line of prototype `k`: `(intercept, slope)` —
    /// bit-identical to [`Prototype::local_line`].
    pub fn local_line(&self, k: usize) -> (f64, &[f64]) {
        let mut intercept = self.ys[k];
        for (bi, ci) in self.b_x(k).iter().zip(self.center(k).iter()) {
            intercept -= bi * ci;
        }
        (intercept, self.b_x(k))
    }

    /// Winner search over the arena: index and squared *joint* query-space
    /// distance (Definition 5) of the prototype closest to
    /// `(center, radius)`; `None` on an empty arena.
    ///
    /// Single pass over the packed center block, four prototypes per
    /// iteration ([`vector::sq_dists4`]); ties keep the lowest index, as
    /// the per-prototype scan did. With non-finite parameters (impossible
    /// through validated training) the winner choice is unspecified.
    pub fn winner(&self, center: &[f64], radius: f64) -> Option<(usize, f64)> {
        if self.len == 0 {
            return None;
        }
        debug_assert_eq!(center.len(), self.dim);
        let d = self.dim;
        let (mut best_k, mut best) = (0usize, f64::INFINITY);
        let mut k = 0usize;
        let mut quads = self.centers.chunks_exact(4 * d);
        for quad in quads.by_ref() {
            let sq = vector::sq_dists4(center, quad, d);
            for (j, &csq) in sq.iter().enumerate() {
                let dr = radius - self.radii[k + j];
                let joint = csq + dr * dr;
                if joint < best {
                    best = joint;
                    best_k = k + j;
                }
            }
            k += 4;
        }
        for row in quads.remainder().chunks_exact(d) {
            let dr = radius - self.radii[k];
            let joint = vector::sq_dist(center, row) + dr * dr;
            if joint < best {
                best = joint;
                best_k = k;
            }
            k += 1;
        }
        Some((best_k, best))
    }

    /// The overlap neighborhood `W(q)` (Eq. 10): `(k, δ(q, w_k))` for every
    /// prototype with `δ > 0`, appended to `out` (cleared first) in
    /// ascending `k`.
    ///
    /// A single fused pass over the packed center and radius blocks: four
    /// squared distances per iteration ([`vector::sq_dists4`]), membership
    /// decided in squared space (the `overlap` module's boundary
    /// contract), and a root taken only for prototypes that actually
    /// overlap. Degrees are bit-identical to
    /// [`crate::overlap::overlap_degree_parts`] per prototype.
    pub fn overlap_set_into(&self, center: &[f64], radius: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        debug_assert_eq!(center.len(), self.dim);
        let d = self.dim;
        let mut k = 0usize;
        let push_if_member = |k: usize, csq: f64, out: &mut Vec<(usize, f64)>| {
            let rk = self.radii[k];
            let radius_sum = radius + rk;
            if csq <= radius_sum * radius_sum {
                let spread = csq.sqrt().max((radius - rk).abs());
                let degree = 1.0 - spread / radius_sum;
                if degree > 0.0 {
                    out.push((k, degree));
                }
            }
        };
        let mut quads = self.centers.chunks_exact(4 * d);
        for quad in quads.by_ref() {
            let sq = vector::sq_dists4(center, quad, d);
            // Branchless membership for the whole quad: the per-row slow
            // path (root + degree + push) runs only when at least one of
            // the four prototypes overlaps — for selective workloads the
            // common case is one predictable untaken branch per quad.
            let r = &self.radii[k..k + 4];
            let s0 = radius + r[0];
            let s1 = radius + r[1];
            let s2 = radius + r[2];
            let s3 = radius + r[3];
            let any_hit =
                (sq[0] <= s0 * s0) | (sq[1] <= s1 * s1) | (sq[2] <= s2 * s2) | (sq[3] <= s3 * s3);
            if any_hit {
                for (j, &csq) in sq.iter().enumerate() {
                    push_if_member(k + j, csq, out);
                }
            }
            k += 4;
        }
        for row in quads.remainder().chunks_exact(d) {
            push_if_member(k, vector::sq_dist(center, row), out);
            k += 1;
        }
    }

    /// Fused batched winner **and** overlap resolution: one pass over the
    /// packed prototype blocks per query block, each center distance
    /// computed once and reused for both the winner update and the
    /// membership test (the scalar path pays two passes — winner, then
    /// overlap — and computes every distance twice).
    ///
    /// **Bit-identity contract.** The whole resolution runs on
    /// [`regq_linalg::vector::winner_overlap_block`], whose per-pair
    /// summation order is exactly the scalar kernel's; the packed center
    /// block is cut at `ROW_TILE` (a multiple of 4) rows, so quad
    /// boundaries — and with them the `sq_dists4`-vs-`sq_dist` tail split
    /// — line up with [`PrototypeArena::winner`] /
    /// [`PrototypeArena::overlap_set_into`] for any `K`. Winner updates
    /// keep strict-`<` ascending-scan semantics (ties keep the lowest
    /// index), and overlap members are pushed in ascending index with the
    /// same membership arithmetic, so for every query the resolution
    /// equals the scalar calls **bit for bit** — the invariant the
    /// `batch_equivalence` proptests pin.
    ///
    /// Must be called on a non-empty arena with dimension-checked
    /// queries (the snapshot layer enforces both).
    pub fn resolve_batch(&self, queries: &[Query], out: &mut BatchResolution) {
        out.clear();
        debug_assert!(self.len > 0, "resolve_batch: empty arena");
        let d = self.dim;
        let BatchResolution {
            winners,
            offsets,
            entries,
            block_sets,
            ..
        } = out;
        offsets.push(0);
        while block_sets.len() < QUERY_BLOCK {
            block_sets.push(Vec::new());
        }
        for block in queries.chunks(QUERY_BLOCK) {
            let bq = block.len();
            for q in block {
                debug_assert_eq!(q.center.len(), d, "resolve_batch: dimension mismatch");
            }
            let mut best = [(0usize, f64::INFINITY); QUERY_BLOCK];
            for set in block_sets.iter_mut().take(bq) {
                set.clear();
            }
            let mut k = 0usize;
            for rows in self.centers.chunks(ROW_TILE * d) {
                let nr = rows.len() / d;
                // `k` is a multiple of ROW_TILE (itself a multiple of
                // `tune::QUAD`), so quad boundaries inside the cut line up
                // with the arena-global quad boundaries of the scalar
                // kernels.
                tune::assert_tile_invariants(k);
                let radii = &self.radii[k..k + nr];
                for (qi, q) in block.iter().enumerate() {
                    vector::winner_overlap_block(
                        &q.center,
                        q.radius,
                        rows,
                        radii,
                        d,
                        k,
                        &mut best[qi],
                        &mut block_sets[qi],
                    );
                }
                k += nr;
            }
            for qi in 0..bq {
                winners.push(best[qi]);
                entries.extend_from_slice(&block_sets[qi]);
                offsets.push(entries.len());
            }
        }
    }

    /// Build the clustered, bounds-cached serving layout over the current
    /// prototypes ([`BlockLayout::build`]) — `O(dK + K log K)`, paid once
    /// per immutable snapshot capture.
    pub fn build_layout(&self) -> BlockLayout {
        BlockLayout::build(self)
    }
}

/// Counted — never silent — screening telemetry from the two-phase pruned
/// resolution ([`BlockLayout::resolve_batch_pruned`]). One unit is one
/// `(query, block)` visit; `blocks = skipped + verified` always holds, so
/// a consumer can compute a skip rate without wondering whether some path
/// forgot to count.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScreenCounters {
    /// `(query, block)` visits considered (`queries × layout blocks`).
    pub blocks: u64,
    /// Visits whose expanded screening tile actually ran (the rest were
    /// resolved by the cheap bounding-box bound alone).
    pub screened: u64,
    /// Visits pruned away — blocks never exact-verified for that query.
    pub skipped: u64,
    /// Visits exact-verified by the bit-exact AoSoA kernel.
    pub verified: u64,
}

impl ScreenCounters {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &ScreenCounters) {
        self.blocks += other.blocks;
        self.screened += other.screened;
        self.skipped += other.skipped;
        self.verified += other.verified;
    }

    /// Fraction of block visits pruned away (`0.0` when nothing was
    /// visited).
    pub fn skip_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.skipped as f64 / self.blocks as f64
        }
    }
}

/// Per-block metadata of a [`BlockLayout`]: slot range, padded AoSoA
/// range, and the cached bounds the screening phase prunes with.
#[derive(Debug, Clone)]
struct BlockMeta {
    /// First slot of this block in the permuted (unpadded) arrays.
    start: usize,
    /// Real rows in this block (`1 ..= ROW_TILE`).
    len: usize,
    /// First row of this block in the padded arrays (`radii_pad`, and
    /// `× dim` into `aosoa`).
    pad_row: usize,
    /// `len` rounded up to a multiple of [`QUAD`].
    padded_len: usize,
    /// Smallest prototype radius in the block.
    r_min: f64,
    /// Largest prototype radius in the block.
    r_max: f64,
    /// Largest `‖center‖²` in the block (the slack scale contribution).
    max_norm: f64,
}

/// The clustered, bounds-cached serving layout behind two-phase pruned
/// resolution: [`PrototypeArena`] prototypes regrouped into spatially
/// coherent blocks of at most [`ROW_TILE`] rows (recursive widest-axis
/// median splits), each block carrying a cached center bounding box,
/// radius range, and precomputed `‖r‖²` row norms, with centers stored
/// both row-major (for the expanded screening tile) and AoSoA
/// quad-interleaved (for the runtime-SIMD exact kernel, partial quads
/// padded with `+inf` inert rows).
///
/// [`BlockLayout::resolve_batch_pruned`] runs winner/overlap as two
/// phases — a conservative screening pass that discards blocks which
/// provably cannot contain the winner or any overlapping ball, then the
/// bit-exact kernel over survivors — and produces a [`BatchResolution`]
/// **bit-identical** to [`PrototypeArena::resolve_batch`] on the source
/// arena (the `pruned_equivalence` batteries pin this).
///
/// Why the permutation cannot change answers: every per-pair distance,
/// joint distance and overlap degree is computed by the same
/// bit-identical kernels; within a block, slots are sorted ascending by
/// arena index, so the kernel's strict-`<` first-wins scan picks the
/// lowest index per block; across blocks, per-block winners merge
/// lexicographically by `(distance, index)` from the global seed
/// `(∞, 0)`, which reproduces the ascending-scan tie-break; and overlap
/// members are re-sorted into ascending arena order before the CSR is
/// emitted, so the fusion fold sums in the scalar path's exact order.
#[derive(Debug, Clone)]
pub struct BlockLayout {
    dim: usize,
    len: usize,
    /// Multiplier on the conservative screening slack — `1.0` in
    /// production; a test hook ([`BlockLayout::with_slack_scale`]).
    slack_scale: f64,
    /// Largest `‖center‖²` across all blocks (overflow guard input).
    max_norm_all: f64,
    /// Largest prototype radius across all blocks (overflow guard input).
    r_max_all: f64,
    blocks: Vec<BlockMeta>,
    /// Per-block bounding box, `nblocks × dim` each.
    bbox_lo: Vec<f64>,
    bbox_hi: Vec<f64>,
    /// Permuted centers, row-major, `len × dim` (screening tile input).
    centers_perm: Vec<f64>,
    /// Cached `‖r‖²` per slot, `len` (screening tile input).
    norms: Vec<f64>,
    /// Permuted radii padded per block to `padded_len` (pad value `0.0`).
    radii_pad: Vec<f64>,
    /// AoSoA quad-interleaved centers padded per block (pad rows `+inf`).
    aosoa: Vec<f64>,
    /// Slot → arena index, `len`, ascending within each block.
    gids: Vec<usize>,
}

impl BlockLayout {
    /// Cluster the arena into the pruned serving layout (see the type
    /// docs). `O(dK + K log K)`; call once per immutable capture.
    pub fn build(arena: &PrototypeArena) -> Self {
        let d = arena.dim();
        let k = arena.len();
        let mut order: Vec<usize> = (0..k).collect();
        // Recursive widest-axis median splits until every leaf fits in
        // one ROW_TILE cut. `select_nth_unstable` keeps this O(K log K)
        // total without fully sorting any axis.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut stack = if k == 0 {
            Vec::new()
        } else {
            vec![(0usize, k)]
        };
        while let Some((lo, hi)) = stack.pop() {
            let n = hi - lo;
            if n <= ROW_TILE {
                ranges.push((lo, hi));
                continue;
            }
            let seg = &mut order[lo..hi];
            let mut widest = 0usize;
            let mut spread = f64::NEG_INFINITY;
            for c in 0..d {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for &g in seg.iter() {
                    let v = arena.center(g)[c];
                    mn = mn.min(v);
                    mx = mx.max(v);
                }
                if mx - mn > spread {
                    spread = mx - mn;
                    widest = c;
                }
            }
            let mid = n / 2;
            seg.select_nth_unstable_by(mid, |&a, &b| {
                arena.center(a)[widest]
                    .partial_cmp(&arena.center(b)[widest])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            stack.push((lo, lo + mid));
            stack.push((lo + mid, hi));
        }
        ranges.sort_unstable();

        let mut layout = BlockLayout {
            dim: d,
            len: k,
            slack_scale: 1.0,
            max_norm_all: 0.0,
            r_max_all: 0.0,
            blocks: Vec::with_capacity(ranges.len()),
            bbox_lo: Vec::with_capacity(ranges.len() * d),
            bbox_hi: Vec::with_capacity(ranges.len() * d),
            centers_perm: Vec::with_capacity(k * d),
            norms: Vec::with_capacity(k),
            radii_pad: Vec::new(),
            aosoa: Vec::new(),
            gids: Vec::with_capacity(k),
        };
        let mut row_major = Vec::new();
        let mut packed = Vec::new();
        let mut pad_row = 0usize;
        for &(lo, hi) in &ranges {
            // Ascending arena order inside the block: the kernel's
            // strict-`<` first-wins scan then picks the lowest arena
            // index per block, as the unpruned scan does globally.
            order[lo..hi].sort_unstable();
            let n = hi - lo;
            let padded = n.div_ceil(QUAD) * QUAD;
            let start = layout.gids.len();
            let (mut r_min, mut r_max) = (f64::INFINITY, f64::NEG_INFINITY);
            let mut max_norm = f64::NEG_INFINITY;
            let bbox_at = layout.bbox_lo.len();
            layout.bbox_lo.resize(bbox_at + d, f64::INFINITY);
            layout.bbox_hi.resize(bbox_at + d, f64::NEG_INFINITY);
            for &g in &order[lo..hi] {
                let center = arena.center(g);
                layout.centers_perm.extend_from_slice(center);
                let norm = vector::dot(center, center);
                layout.norms.push(norm);
                max_norm = max_norm.max(norm);
                let radius = arena.radius(g);
                r_min = r_min.min(radius);
                r_max = r_max.max(radius);
                layout.radii_pad.push(radius);
                layout.gids.push(g);
                for (c, &v) in center.iter().enumerate() {
                    layout.bbox_lo[bbox_at + c] = layout.bbox_lo[bbox_at + c].min(v);
                    layout.bbox_hi[bbox_at + c] = layout.bbox_hi[bbox_at + c].max(v);
                }
            }
            layout.radii_pad.resize(pad_row + padded, 0.0);
            // Pad partial quads with +inf rows — inert under both the
            // strict-`<` winner update and the membership test (see
            // `winner_overlap_block_aosoa`) — then repack AoSoA.
            row_major.clear();
            row_major.extend_from_slice(&layout.centers_perm[start * d..(start + n) * d]);
            row_major.resize(padded * d, f64::INFINITY);
            simd::pack_quads_aosoa(&row_major, d, &mut packed);
            layout.aosoa.extend_from_slice(&packed);
            layout.max_norm_all = layout.max_norm_all.max(max_norm);
            layout.r_max_all = layout.r_max_all.max(r_max);
            layout.blocks.push(BlockMeta {
                start,
                len: n,
                pad_row,
                padded_len: padded,
                r_min,
                r_max,
                max_norm,
            });
            pad_row += padded;
        }
        layout
    }

    /// Number of prototypes covered by the layout.
    pub fn k(&self) -> usize {
        self.len
    }

    /// Input dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of clustered blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// **Test hook**: scale the conservative screening slack by `s`.
    /// `1.0` (the production value) keeps the proven-conservative bound;
    /// `0.0` deliberately under-slacks the screen so equivalence
    /// batteries can demonstrate that the slack is load-bearing. Never
    /// called on the serving path.
    #[must_use]
    pub fn with_slack_scale(mut self, s: f64) -> Self {
        self.slack_scale = s;
        self
    }

    /// Screening phase for one query: fill `lbs`/`ovl` with per-block
    /// joint-distance lower bounds and overlap-possibility flags
    /// (slack-adjusted, so both are conservative with respect to every
    /// value the exact kernel can compute), then mark survivors.
    #[allow(clippy::too_many_arguments)]
    fn screen_query(
        &self,
        q: &Query,
        lbs: &mut Vec<f64>,
        ovl: &mut Vec<bool>,
        screen: &mut Vec<f64>,
        survive: &mut [bool],
        counters: &mut ScreenCounters,
    ) {
        let d = self.dim;
        let nb = self.blocks.len();
        counters.blocks += nb as u64;
        let q_sq = vector::dot(&q.center, &q.center);
        // Overflow guard: the slack argument needs every intermediate of
        // the expanded form to stay finite. `2·√(q²·r²)` bounds |2⟨q,r⟩|
        // (Cauchy–Schwarz), so if this sum is finite no screening value
        // can have overflowed. Otherwise pruning is disabled — slower,
        // never wrong.
        let guard = q_sq
            + self.max_norm_all
            + 2.0 * (q_sq * self.max_norm_all).sqrt()
            + (q.radius + self.r_max_all) * (q.radius + self.r_max_all);
        if !guard.is_finite() {
            survive.fill(true);
            counters.verified += nb as u64;
            return;
        }
        lbs.clear();
        ovl.clear();
        for (b, meta) in self.blocks.iter().enumerate() {
            let lo = &self.bbox_lo[b * d..(b + 1) * d];
            let hi = &self.bbox_hi[b * d..(b + 1) * d];
            let mut bb = 0.0;
            for ((&l, &h), &qc) in lo.iter().zip(hi).zip(q.center.iter()) {
                let gap = if qc < l {
                    l - qc
                } else if qc > h {
                    qc - h
                } else {
                    0.0
                };
                bb += gap * gap;
            }
            let rad_lb = if q.radius < meta.r_min {
                let t = meta.r_min - q.radius;
                t * t
            } else if q.radius > meta.r_max {
                let t = q.radius - meta.r_max;
                t * t
            } else {
                0.0
            };
            let slack = self.block_slack(q, q_sq, meta);
            let rs = q.radius + meta.r_max;
            lbs.push(bb + rad_lb - slack);
            ovl.push(bb - slack <= rs * rs);
        }
        // Screen the cheapest-looking block first so `best_ub` starts
        // tight and the bbox bound can discard most blocks without ever
        // running their expanded tile.
        let first = lbs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(b, _)| b)
            .unwrap_or(0);
        let mut best_ub = f64::INFINITY;
        for b in std::iter::once(first).chain((0..nb).filter(|&b| b != first)) {
            if lbs[b] > best_ub && !ovl[b] {
                // Cheap skip: the bbox bound alone proves this block can
                // contain neither the winner nor an overlap member, and
                // `best_ub` only decreases, so the final filter below
                // rejects it too.
                continue;
            }
            counters.screened += 1;
            let meta = &self.blocks[b];
            let rows = &self.centers_perm[meta.start * d..(meta.start + meta.len) * d];
            let norms = &self.norms[meta.start..meta.start + meta.len];
            screen.clear();
            screen.resize(meta.len, 0.0);
            // SCREENING: expanded-form distances only ever *discard*
            // blocks here, under the conservative `screening_slack`
            // bound (≥ the expanded-vs-direct cancellation error at this
            // scale), so no true winner or overlap member is screened
            // out; every answer comes from the exact kernel over the
            // surviving blocks.
            vector::sq_dist_tile_expanded_with_norms(&q.center, 1, rows, d, norms, screen);
            let radii = &self.radii_pad[meta.pad_row..meta.pad_row + meta.len];
            let slack = self.block_slack(q, q_sq, meta);
            let mut block_min = f64::INFINITY;
            let mut row_ovl = false;
            for (&e, &rk) in screen.iter().zip(radii) {
                let dr = q.radius - rk;
                let joint = e + dr * dr;
                if joint < block_min {
                    block_min = joint;
                }
                let rs = q.radius + rk;
                row_ovl |= e <= rs * rs + slack;
            }
            if block_min - slack > lbs[b] {
                lbs[b] = block_min - slack;
            }
            if block_min + slack < best_ub {
                best_ub = block_min + slack;
            }
            ovl[b] = ovl[b] && row_ovl;
        }
        for b in 0..nb {
            // `≤` (not `<`): boundary and slack-band ties always survive
            // to the exact phase — pruning must only ever remove blocks
            // that *provably* cannot matter.
            let s = lbs[b] <= best_ub || ovl[b];
            survive[b] = s;
            if s {
                counters.verified += 1;
            } else {
                counters.skipped += 1;
            }
        }
    }

    /// Conservative absolute slack for screening comparisons against
    /// block `meta` — see [`vector::screening_slack`] for the bound it
    /// must (and does, generously) dominate.
    #[inline]
    fn block_slack(&self, q: &Query, q_sq: f64, meta: &BlockMeta) -> f64 {
        let rs = q.radius + meta.r_max;
        vector::screening_slack(self.dim, q_sq + meta.max_norm + rs * rs) * self.slack_scale
    }

    /// Two-phase pruned batched resolution: screening
    /// (`screen_query`, above) discards blocks that provably cannot
    /// contain the winner or any overlapping ball, then the bit-exact
    /// AoSoA kernel ([`vector::winner_overlap_block_aosoa`]) resolves the
    /// survivors. The filled [`BatchResolution`] is **bit-identical** to
    /// [`PrototypeArena::resolve_batch`] on the source arena for every
    /// query (see the type docs for the argument); `counters` is
    /// accumulated, never reset, so callers can aggregate across calls.
    ///
    /// Must be called on a non-empty layout with dimension-checked
    /// queries (the snapshot layer enforces both).
    pub fn resolve_batch_pruned(
        &self,
        queries: &[Query],
        out: &mut BatchResolution,
        counters: &mut ScreenCounters,
    ) {
        out.clear();
        debug_assert!(self.len > 0, "resolve_batch_pruned: empty layout");
        let d = self.dim;
        let nb = self.blocks.len();
        let BatchResolution {
            winners,
            offsets,
            entries,
            block_sets,
            screen,
            lbs,
            ovl,
            survive,
        } = out;
        offsets.push(0);
        while block_sets.len() < QUERY_BLOCK {
            block_sets.push(Vec::new());
        }
        for chunk in queries.chunks(QUERY_BLOCK) {
            let bq = chunk.len();
            survive.clear();
            survive.resize(bq * nb, false);
            for set in block_sets.iter_mut().take(bq) {
                set.clear();
            }
            // Merged winner per query as `(arena index, squared joint)`,
            // seeded like the unpruned scan's `(0, ∞)`.
            let mut best = [(0usize, f64::INFINITY); QUERY_BLOCK];
            for (qi, q) in chunk.iter().enumerate() {
                debug_assert_eq!(
                    q.center.len(),
                    d,
                    "resolve_batch_pruned: dimension mismatch"
                );
                self.screen_query(
                    q,
                    lbs,
                    ovl,
                    screen,
                    &mut survive[qi * nb..(qi + 1) * nb],
                    counters,
                );
            }
            // Verify phase, block-outer: each surviving AoSoA tile stays
            // hot while every query that kept it runs the exact kernel.
            for (b, meta) in self.blocks.iter().enumerate() {
                tune::assert_tile_invariants(meta.pad_row);
                let quads = &self.aosoa[meta.pad_row * d..(meta.pad_row + meta.padded_len) * d];
                let radii = &self.radii_pad[meta.pad_row..meta.pad_row + meta.padded_len];
                for (qi, q) in chunk.iter().enumerate() {
                    if !survive[qi * nb + b] {
                        continue;
                    }
                    let mut local = (0usize, f64::INFINITY);
                    let set = &mut block_sets[qi];
                    let before = set.len();
                    vector::winner_overlap_block_aosoa(
                        &q.center, q.radius, quads, radii, d, 0, &mut local, set,
                    );
                    // Slot → arena index; +inf pad rows can never be
                    // pushed, so every slot here is a real row.
                    for e in set[before..].iter_mut() {
                        e.0 = self.gids[meta.start + e.0];
                    }
                    let gid = self.gids[meta.start + local.0];
                    let (best_gid, best_sq) = best[qi];
                    // Lexicographic (distance, index) merge — reproduces
                    // the ascending-scan strict-`<` tie-break across the
                    // permuted blocks.
                    if local.1 < best_sq || (local.1 == best_sq && gid < best_gid) {
                        best[qi] = (gid, local.1);
                    }
                }
            }
            for qi in 0..bq {
                // Ascending arena order restores the scalar path's exact
                // fusion summation order; degrees are per-pair
                // bit-identical, so the CSR equals the unpruned one.
                block_sets[qi].sort_unstable_by_key(|e| e.0);
                winners.push(best[qi]);
                entries.extend_from_slice(&block_sets[qi]);
                offsets.push(entries.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::overlap_degree_parts;
    use crate::query::Query;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_protos(k: usize, d: usize, seed: u64) -> Vec<Prototype> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| Prototype {
                center: (0..d).map(|_| rng.random_range(-1.0..1.0)).collect(),
                radius: rng.random_range(0.05..0.5),
                y: rng.random_range(-3.0..3.0),
                b_x: (0..d).map(|_| rng.random_range(-2.0..2.0)).collect(),
                b_theta: rng.random_range(-1.0..1.0),
                updates: rng.random_range(1..50u64),
            })
            .collect()
    }

    #[test]
    fn round_trips_owned_prototypes() {
        let protos = random_protos(13, 3, 1);
        let arena = PrototypeArena::from_prototypes(3, &protos);
        assert_eq!(arena.len(), 13);
        assert_eq!(arena.dim(), 3);
        assert_eq!(arena.to_prototypes(), protos);
    }

    #[test]
    fn views_expose_the_pushed_fields() {
        let protos = random_protos(5, 2, 2);
        let arena = PrototypeArena::from_prototypes(2, &protos);
        for (k, p) in protos.iter().enumerate() {
            let v = arena.view(k);
            assert_eq!(v.center, &p.center[..]);
            assert_eq!(v.radius, p.radius);
            assert_eq!(v.y, p.y);
            assert_eq!(v.b_x, &p.b_x[..]);
            assert_eq!(v.b_theta, p.b_theta);
            assert_eq!(v.updates, p.updates);
            assert_eq!(v.to_prototype(), *p);
        }
    }

    #[test]
    fn eval_and_local_line_match_owned_prototype() {
        let protos = random_protos(9, 4, 3);
        let arena = PrototypeArena::from_prototypes(4, &protos);
        let x = [0.3, -0.2, 0.9, 0.1];
        for (k, p) in protos.iter().enumerate() {
            assert_eq!(arena.eval(k, &x, 0.17), p.eval(&x, 0.17));
            assert_eq!(arena.eval_at_own_radius(k, &x), p.eval_at_own_radius(&x));
            let (ia, sa) = arena.local_line(k);
            let (ip, sp) = p.local_line();
            assert_eq!(ia, ip);
            assert_eq!(sa, sp);
        }
    }

    #[test]
    fn winner_matches_per_prototype_scan() {
        // Counts straddling the 4-row quad boundary.
        for k in [1usize, 2, 3, 4, 5, 7, 8, 9, 31] {
            let protos = random_protos(k, 3, 100 + k as u64);
            let arena = PrototypeArena::from_prototypes(3, &protos);
            let q = Query::new_unchecked(vec![0.1, -0.3, 0.4], 0.2);
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in protos.iter().enumerate() {
                let d = p.sq_dist_to(&q);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            assert_eq!(arena.winner(&q.center, q.radius), best, "k = {k}");
        }
    }

    #[test]
    fn winner_ties_keep_the_lowest_index() {
        // Two identical prototypes: the scalar scan keeps the first.
        let p = random_protos(1, 2, 7).pop().unwrap();
        let arena = PrototypeArena::from_prototypes(2, &[p.clone(), p.clone()]);
        let (k, _) = arena.winner(&[0.0, 0.0], 0.1).unwrap();
        assert_eq!(k, 0);
    }

    #[test]
    fn overlap_set_matches_per_prototype_degrees() {
        for k in [1usize, 4, 6, 17] {
            let protos = random_protos(k, 2, 200 + k as u64);
            let arena = PrototypeArena::from_prototypes(2, &protos);
            let (c, r) = (vec![0.2, 0.1], 0.45);
            let mut got = vec![(9usize, 9.0)];
            arena.overlap_set_into(&c, r, &mut got);
            let want: Vec<(usize, f64)> = protos
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    let d = overlap_degree_parts(&c, r, &p.center, p.radius);
                    (d > 0.0).then_some((i, d))
                })
                .collect();
            assert_eq!(got, want, "k = {k}");
        }
    }

    #[test]
    fn resolve_batch_is_bit_identical_to_scalar_passes() {
        let mut rng = StdRng::seed_from_u64(9);
        // K values straddling the quad and ROW_TILE boundaries.
        for k in [1usize, 3, 4, 5, 63, 64, 65, 130] {
            let arena = PrototypeArena::from_prototypes(3, &random_protos(k, 3, k as u64));
            let queries: Vec<Query> = (0..37)
                .map(|_| {
                    let c: Vec<f64> = (0..3).map(|_| rng.random_range(-1.5..1.5)).collect();
                    Query::new_unchecked(c, rng.random_range(0.01..1.0))
                })
                .collect();
            let mut res = BatchResolution::new();
            arena.resolve_batch(&queries, &mut res);
            assert_eq!(res.len(), queries.len());
            let mut scalar_set = Vec::new();
            for (i, q) in queries.iter().enumerate() {
                let want = arena.winner(&q.center, q.radius).unwrap();
                assert_eq!(res.winner(i), want, "K={k} query {i} winner");
                arena.overlap_set_into(&q.center, q.radius, &mut scalar_set);
                assert_eq!(res.overlap(i), &scalar_set[..], "K={k} query {i} overlap");
            }
        }
    }

    #[test]
    fn resolve_batch_of_empty_query_slice_is_empty() {
        let arena = PrototypeArena::from_prototypes(2, &random_protos(5, 2, 1));
        let mut res = BatchResolution::new();
        arena.resolve_batch(&[], &mut res);
        assert!(res.is_empty());
        assert_eq!(res.len(), 0);
    }

    #[test]
    fn empty_arena_has_no_winner_and_no_overlap() {
        let arena = PrototypeArena::new(2);
        assert!(arena.winner(&[0.0, 0.0], 0.1).is_none());
        let mut out = vec![(1usize, 1.0)];
        arena.overlap_set_into(&[0.0, 0.0], 0.1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn remove_shifts_later_prototypes_down() {
        let protos = random_protos(4, 2, 5);
        let mut arena = PrototypeArena::from_prototypes(2, &protos);
        arena.remove(1);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.view(0).to_prototype(), protos[0]);
        assert_eq!(arena.view(1).to_prototype(), protos[2]);
        assert_eq!(arena.view(2).to_prototype(), protos[3]);
    }

    #[test]
    fn retain_compacts_in_place() {
        let protos = random_protos(6, 3, 6);
        let mut arena = PrototypeArena::from_prototypes(3, &protos);
        let mut i = 0usize;
        arena.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        assert_eq!(arena.len(), 3);
        for (slot, orig) in [0usize, 2, 4].into_iter().enumerate() {
            assert_eq!(arena.view(slot).to_prototype(), protos[orig]);
        }
    }

    #[test]
    fn view_mut_writes_through() {
        let protos = random_protos(3, 2, 8);
        let mut arena = PrototypeArena::from_prototypes(2, &protos);
        {
            let v = arena.view_mut(1);
            v.center[0] = 42.0;
            *v.radius = 0.9;
            *v.y = -7.0;
            v.b_x[1] = 3.5;
            *v.b_theta = 1.25;
            *v.updates = 99;
        }
        let p = arena.view(1);
        assert_eq!(p.center[0], 42.0);
        assert_eq!(p.radius, 0.9);
        assert_eq!(p.y, -7.0);
        assert_eq!(p.b_x[1], 3.5);
        assert_eq!(p.b_theta, 1.25);
        assert_eq!(p.updates, 99);
        // Neighbours untouched.
        assert_eq!(arena.view(0).to_prototype(), protos[0]);
        assert_eq!(arena.view(2).to_prototype(), protos[2]);
    }

    #[test]
    fn push_query_zero_initializes() {
        let mut arena = PrototypeArena::new(2);
        arena.push_query(&[0.3, 0.4], 0.2);
        let p = arena.view(0);
        assert_eq!(p.center, &[0.3, 0.4]);
        assert_eq!(p.radius, 0.2);
        assert_eq!(p.y, 0.0);
        assert_eq!(p.b_x, &[0.0, 0.0]);
        assert_eq!(p.b_theta, 0.0);
        assert_eq!(p.updates, 1);
    }

    // --- Pruned serving layout (prefix `screening_` so the nightly Miri
    // --- job can filter `-p regq_core screening_`).

    /// Assert the layout permutation covers exactly `0..K` with ascending
    /// arena indices inside each block.
    fn assert_layout_well_formed(layout: &BlockLayout, k: usize, d: usize) {
        assert_eq!(layout.k(), k);
        assert_eq!(layout.dim(), d);
        let mut seen = vec![false; k];
        for meta in &layout.blocks {
            assert!(meta.len >= 1 && meta.len <= ROW_TILE);
            assert_eq!(meta.padded_len % QUAD, 0);
            assert_eq!(meta.pad_row % QUAD, 0);
            let gids = &layout.gids[meta.start..meta.start + meta.len];
            for w in gids.windows(2) {
                assert!(w[0] < w[1], "block gids must be strictly ascending");
            }
            for &g in gids {
                assert!(!seen[g], "gid {g} appears twice");
                seen[g] = true;
            }
            // Pad rows are +inf centers with 0.0 radii — inert.
            for pad in meta.len..meta.padded_len {
                assert_eq!(layout.radii_pad[meta.pad_row + pad], 0.0);
            }
        }
        assert!(seen.iter().all(|&s| s), "layout must cover every gid");
    }

    #[test]
    fn screening_layout_partitions_the_arena() {
        for k in [1usize, 3, 4, 5, 63, 64, 65, 130, 257, 1000] {
            let arena = PrototypeArena::from_prototypes(3, &random_protos(k, 3, 40 + k as u64));
            let layout = arena.build_layout();
            assert_layout_well_formed(&layout, k, 3);
        }
    }

    #[test]
    fn screening_resolve_pruned_matches_resolve_batch() {
        let mut rng = StdRng::seed_from_u64(11);
        // K values straddling the quad and ROW_TILE boundaries, batch
        // sizes straddling QUERY_BLOCK.
        for k in [1usize, 3, 4, 5, 63, 64, 65, 130, 257] {
            let arena = PrototypeArena::from_prototypes(3, &random_protos(k, 3, k as u64));
            let layout = arena.build_layout();
            assert_layout_well_formed(&layout, k, 3);
            for nq in [1usize, 7, 16, 37] {
                let queries: Vec<Query> = (0..nq)
                    .map(|_| {
                        let c: Vec<f64> = (0..3).map(|_| rng.random_range(-1.5..1.5)).collect();
                        Query::new_unchecked(c, rng.random_range(0.01..1.0))
                    })
                    .collect();
                let mut want = BatchResolution::new();
                arena.resolve_batch(&queries, &mut want);
                let mut got = BatchResolution::new();
                let mut counters = ScreenCounters::default();
                layout.resolve_batch_pruned(&queries, &mut got, &mut counters);
                assert_eq!(got.len(), want.len());
                for i in 0..queries.len() {
                    let (wg, ws) = want.winner(i);
                    let (gg, gs) = got.winner(i);
                    assert_eq!((gg, gs.to_bits()), (wg, ws.to_bits()), "K={k} q{i} winner");
                    let we = want.overlap(i);
                    let ge = got.overlap(i);
                    assert_eq!(ge.len(), we.len(), "K={k} q{i} overlap size");
                    for (a, b) in ge.iter().zip(we) {
                        assert_eq!((a.0, a.1.to_bits()), (b.0, b.1.to_bits()), "K={k} q{i}");
                    }
                }
                // Counted — never silent: every visit lands in exactly
                // one bucket and screening never exceeds visits.
                assert_eq!(
                    counters.blocks,
                    (queries.len() * layout.num_blocks()) as u64
                );
                assert_eq!(counters.skipped + counters.verified, counters.blocks);
                assert!(counters.screened <= counters.blocks);
            }
        }
    }

    #[test]
    fn screening_skips_blocks_on_clustered_data() {
        // Two tight, well-separated clusters: queries sitting inside one
        // cluster must prune the other cluster's blocks.
        let mut rng = StdRng::seed_from_u64(21);
        let mut protos = Vec::new();
        for cluster in 0..2 {
            let off = cluster as f64 * 100.0;
            for p in random_protos(256, 3, 70 + cluster as u64) {
                let mut p = p;
                for c in p.center.iter_mut() {
                    *c = *c * 0.5 + off;
                }
                p.radius = 0.05;
                protos.push(p);
            }
        }
        let arena = PrototypeArena::from_prototypes(3, &protos);
        let layout = arena.build_layout();
        let queries: Vec<Query> = (0..32)
            .map(|i| {
                let off = (i % 2) as f64 * 100.0;
                let c: Vec<f64> = (0..3).map(|_| rng.random_range(-0.5..0.5) + off).collect();
                Query::new_unchecked(c, 0.05)
            })
            .collect();
        let mut want = BatchResolution::new();
        arena.resolve_batch(&queries, &mut want);
        let mut got = BatchResolution::new();
        let mut counters = ScreenCounters::default();
        layout.resolve_batch_pruned(&queries, &mut got, &mut counters);
        for i in 0..queries.len() {
            assert_eq!(got.winner(i), want.winner(i), "q{i}");
            assert_eq!(got.overlap(i), want.overlap(i), "q{i}");
        }
        // Each query must at least prune the far cluster (half the blocks).
        assert!(
            counters.skip_rate() >= 0.5,
            "expected >= 50% skip rate on clustered data, got {:.3} ({counters:?})",
            counters.skip_rate()
        );
    }

    #[test]
    fn screening_scratch_reuse_is_clean_across_calls() {
        // Re-using one BatchResolution + counters across layouts of
        // different block counts must not leak stale scratch.
        let mut res = BatchResolution::new();
        let mut counters = ScreenCounters::default();
        let q = Query::new_unchecked(vec![0.1, -0.2, 0.3], 0.2);
        let mut total_blocks = 0u64;
        for k in [257usize, 4, 130] {
            let arena = PrototypeArena::from_prototypes(3, &random_protos(k, 3, 90 + k as u64));
            let layout = arena.build_layout();
            layout.resolve_batch_pruned(std::slice::from_ref(&q), &mut res, &mut counters);
            let mut want = BatchResolution::new();
            arena.resolve_batch(std::slice::from_ref(&q), &mut want);
            assert_eq!(res.len(), 1);
            assert_eq!(res.winner(0), want.winner(0), "K={k}");
            assert_eq!(res.overlap(0), want.overlap(0), "K={k}");
            total_blocks += layout.num_blocks() as u64;
        }
        // Counters accumulate (never reset) across calls.
        assert_eq!(counters.blocks, total_blocks);
        assert_eq!(counters.skipped + counters.verified, counters.blocks);
    }

    #[test]
    fn screening_overflow_guard_disables_pruning_not_correctness() {
        // Centers near f64::MAX make the expanded form overflow; the
        // guard must fall back to verifying every block.
        let mut protos = random_protos(8, 2, 31);
        protos[3].center = vec![1e200, -1e200];
        let arena = PrototypeArena::from_prototypes(2, &protos);
        let layout = arena.build_layout();
        let q = Query::new_unchecked(vec![1e200, 0.0], 0.1);
        let mut want = BatchResolution::new();
        arena.resolve_batch(std::slice::from_ref(&q), &mut want);
        let mut got = BatchResolution::new();
        let mut counters = ScreenCounters::default();
        layout.resolve_batch_pruned(std::slice::from_ref(&q), &mut got, &mut counters);
        assert_eq!(got.winner(0), want.winner(0));
        assert_eq!(got.overlap(0), want.overlap(0));
        assert_eq!(counters.skipped, 0, "guard must disable pruning");
        assert_eq!(counters.verified, counters.blocks);
    }

    #[test]
    fn screening_counters_merge_and_rate() {
        let mut a = ScreenCounters {
            blocks: 10,
            screened: 4,
            skipped: 6,
            verified: 4,
        };
        let b = ScreenCounters {
            blocks: 2,
            screened: 2,
            skipped: 0,
            verified: 2,
        };
        a.merge(&b);
        assert_eq!(a.blocks, 12);
        assert_eq!(a.skipped, 6);
        assert_eq!(a.verified, 6);
        assert_eq!(a.screened, 6);
        assert!((a.skip_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ScreenCounters::default().skip_rate(), 0.0);
    }
}
