//! SGD learning-rate schedules (paper §II-B).
//!
//! The paper uses the hyperbolic schedule `η_t = 1/(t + 1)`, which satisfies
//! the Robbins–Monro conditions `Σ η_t = ∞`, `Σ η_t² < ∞`. What the paper
//! leaves open is *which* `t`: a global step counter or a per-prototype
//! update counter (design decision D-1 in DESIGN.md). Per-prototype is the
//! default here — each prototype's parameters are then a proper stochastic
//! average of the queries it wins, matching the AVQ convergence analyses the
//! paper cites — and the global variant is kept for the ablation bench.

use serde::{Deserialize, Serialize};

/// Learning-rate schedule for the Theorem-4 updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LearningSchedule {
    /// `η = 1/(1 + t_k)` with `t_k` = number of updates prototype `k` has
    /// received (default; D-1).
    #[default]
    HyperbolicPerPrototype,
    /// `η = 1/(1 + t)` with `t` = global training step.
    HyperbolicGlobal,
    /// Constant rate (mainly for drift adaptation, extension E-2: a floor
    /// on plasticity keeps the model tracking non-stationary data).
    Constant(f64),
}

impl LearningSchedule {
    /// The rate for a prototype with `proto_steps` prior updates at global
    /// step `global_step`.
    #[inline]
    pub fn rate(&self, proto_steps: u64, global_step: u64) -> f64 {
        match self {
            LearningSchedule::HyperbolicPerPrototype => 1.0 / (1.0 + proto_steps as f64),
            LearningSchedule::HyperbolicGlobal => 1.0 / (1.0 + global_step as f64),
            LearningSchedule::Constant(eta) => *eta,
        }
    }

    /// The rate used for the LLM *coefficient* updates: `1/(1+t)^power`
    /// for the hyperbolic schedules (two-timescale stochastic
    /// approximation — the local regression coefficients must adapt on a
    /// slower-decaying schedule than the quantizer they sit on; any
    /// `power ∈ (0.5, 1]` satisfies Robbins–Monro). `power = 1` recovers
    /// the paper's single shared schedule.
    #[inline]
    pub fn coeff_rate(&self, proto_steps: u64, global_step: u64, power: f64) -> f64 {
        match self {
            LearningSchedule::HyperbolicPerPrototype => (1.0 + proto_steps as f64).powf(-power),
            LearningSchedule::HyperbolicGlobal => (1.0 + global_step as f64).powf(-power),
            LearningSchedule::Constant(eta) => *eta,
        }
    }

    /// Validate schedule parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let LearningSchedule::Constant(eta) = self {
            if !(*eta > 0.0 && *eta < 1.0) {
                return Err(format!(
                    "constant learning rate must be in (0,1), got {eta}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_prototype_rate_decays_with_proto_steps() {
        let s = LearningSchedule::HyperbolicPerPrototype;
        assert_eq!(s.rate(0, 100), 1.0);
        assert_eq!(s.rate(1, 100), 0.5);
        assert_eq!(s.rate(9, 100), 0.1);
    }

    #[test]
    fn global_rate_ignores_proto_steps() {
        let s = LearningSchedule::HyperbolicGlobal;
        assert_eq!(s.rate(0, 9), 0.1);
        assert_eq!(s.rate(1000, 9), 0.1);
    }

    #[test]
    fn constant_rate_is_constant() {
        let s = LearningSchedule::Constant(0.05);
        assert_eq!(s.rate(0, 0), 0.05);
        assert_eq!(s.rate(99, 99), 0.05);
    }

    #[test]
    fn robbins_monro_conditions_hold_for_hyperbolic() {
        // Partial sums: Σ 1/(1+t) diverges (grows like ln), Σ 1/(1+t)^2
        // converges (< π²/6).
        let s = LearningSchedule::HyperbolicPerPrototype;
        let sum: f64 = (0..100_000u64).map(|t| s.rate(t, 0)).sum();
        let sum_sq: f64 = (0..100_000u64).map(|t| s.rate(t, 0).powi(2)).sum();
        assert!(sum > 10.0);
        assert!(sum_sq < 1.6449341);
    }

    #[test]
    fn validate_rejects_bad_constant() {
        assert!(LearningSchedule::Constant(0.0).validate().is_err());
        assert!(LearningSchedule::Constant(1.0).validate().is_err());
        assert!(LearningSchedule::Constant(0.3).validate().is_ok());
        assert!(LearningSchedule::HyperbolicGlobal.validate().is_ok());
    }
}
