//! Extension E-1 — prediction of high-order moments (the paper's
//! conclusion lists this as future work).
//!
//! A [`MomentsModel`] trains two LLM heads on the same query stream: the
//! standard head on the Q1 answer `y = E[u | D(x,θ)]` and a second head on
//! the *centered* second moment `Var[u | D(x,θ)]` (available from the
//! exact engine at no extra cost — see `regq_exact::q1_moments`).
//!
//! Training on the variance directly, rather than on `E[u²]` with a
//! subtraction at prediction time, keeps the target well conditioned:
//! when `mean² ≫ var`, small errors in either head would otherwise
//! dominate the difference.
//!
//! Because the quantizer's prototype motion depends **only on the query
//! vector** (Theorem 4's `Δw_j = η(q − w_j)` has no `y` term), the two
//! heads driven by the same query sequence maintain *identical* codebooks.

use crate::config::ModelConfig;
use crate::error::CoreError;
use crate::model::LlmModel;
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// Mean + second-moment predictor over data subspaces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MomentsModel {
    mean: LlmModel,
    second: LlmModel,
    /// Joint convergence accounting: the heads must freeze *together* or
    /// their codebooks would desynchronize (a frozen head stops moving its
    /// prototypes while the other keeps training).
    quiet_steps: usize,
}

/// A pair of exact conditional moments used as the training signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentPair {
    /// `E[u | D(x,θ)]` — the Q1 answer.
    pub mean: f64,
    /// `Var[u | D(x,θ)]` — the centered second moment.
    pub variance: f64,
}

/// Predicted conditional moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedMoments {
    /// Predicted mean `ŷ`.
    pub mean: f64,
    /// Predicted raw second moment `variance + mean²`.
    pub second: f64,
    /// Predicted variance (clamped non-negative).
    pub variance: f64,
}

impl MomentsModel {
    /// Create an untrained moments model.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] on invalid configuration.
    pub fn new(config: ModelConfig) -> Result<Self, CoreError> {
        Ok(MomentsModel {
            mean: LlmModel::new(config.clone())?,
            second: LlmModel::new(config)?,
            quiet_steps: 0,
        })
    }

    /// One training step on `(q, E[u], E[u²])`. Returns `true` once the
    /// joint convergence criterion froze both heads.
    ///
    /// # Errors
    /// Propagates [`LlmModel::train_step`] errors; both heads are updated
    /// or neither (the first failing head aborts before the second is
    /// touched, and head-one failures are input-validation only, which
    /// would equally fail head two).
    pub fn train_step(&mut self, q: &Query, m: MomentPair) -> Result<bool, CoreError> {
        if self.mean.is_frozen() {
            return Ok(true);
        }
        let a = self.mean.train_step_plastic(q, m.mean)?;
        let b = self.second.train_step_plastic(q, m.variance)?;
        debug_assert_eq!(a.winner, b.winner, "heads must share the codebook");
        debug_assert_eq!(a.spawned, b.spawned, "heads must share the codebook");
        // Joint Γ over both heads: the codebook displacement is shared and
        // the coefficient displacement is the worse of the two heads.
        let gamma = a.gamma_j.max(a.gamma_h).max(b.gamma_j.max(b.gamma_h));
        let cfg = self.mean.config();
        if gamma <= cfg.gamma {
            self.quiet_steps += 1;
            if self.quiet_steps >= cfg.convergence_window {
                self.mean.freeze();
                self.second.freeze();
                return Ok(true);
            }
        } else {
            self.quiet_steps = 0;
        }
        Ok(false)
    }

    /// Predict mean, second moment and variance for an unseen query.
    ///
    /// # Errors
    /// Same as [`LlmModel::predict_q1`].
    pub fn predict(&self, q: &Query) -> Result<PredictedMoments, CoreError> {
        let mean = self.mean.predict_q1(q)?;
        let variance = self.second.predict_q1(q)?.max(0.0);
        Ok(PredictedMoments {
            mean,
            second: variance + mean * mean,
            variance,
        })
    }

    /// The mean head (full Q1/Q2 interface available on it).
    pub fn mean_head(&self) -> &LlmModel {
        &self.mean
    }

    /// The variance head.
    pub fn second_head(&self) -> &LlmModel {
        &self.second
    }

    /// Prototype count (identical across heads by construction).
    pub fn k(&self) -> usize {
        self.mean.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Teacher: u | q ~ has mean = x1 and variance = 0.04 + 0.05 x2
    /// (heteroscedastic).
    fn train_moments(seed: u64) -> MomentsModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::paper_defaults(2);
        cfg.gamma = 1e-4;
        let mut m = MomentsModel::new(cfg).unwrap();
        for _ in 0..40_000 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let mean = c[0];
            let var = 0.04 + 0.05 * c[1];
            let pair = MomentPair {
                mean,
                variance: var,
            };
            let q = Query::new_unchecked(c, rng.random_range(0.05..0.15));
            if m.train_step(&q, pair).unwrap() {
                break;
            }
        }
        m
    }

    #[test]
    fn heads_share_codebook_size() {
        let m = train_moments(3);
        assert_eq!(m.mean_head().k(), m.second_head().k());
        assert!(m.k() > 1);
    }

    #[test]
    fn heads_share_prototype_positions() {
        let m = train_moments(5);
        for (a, b) in m
            .mean_head()
            .prototypes()
            .iter()
            .zip(m.second_head().prototypes().iter())
        {
            assert_eq!(a.center, b.center);
            assert_eq!(a.radius, b.radius);
            assert_eq!(a.updates, b.updates);
        }
    }

    #[test]
    fn predicts_mean_and_variance() {
        let m = train_moments(7);
        let q = Query::new_unchecked(vec![0.5, 0.5], 0.1);
        let p = m.predict(&q).unwrap();
        assert!((p.mean - 0.5).abs() < 0.1, "mean {}", p.mean);
        let true_var = 0.04 + 0.05 * 0.5;
        assert!(
            (p.variance - true_var).abs() < 0.05,
            "variance {} vs {}",
            p.variance,
            true_var
        );
    }

    #[test]
    fn variance_tracks_heteroscedasticity() {
        let m = train_moments(9);
        let lo = m
            .predict(&Query::new_unchecked(vec![0.5, 0.1], 0.1))
            .unwrap()
            .variance;
        let hi = m
            .predict(&Query::new_unchecked(vec![0.5, 0.9], 0.1))
            .unwrap()
            .variance;
        assert!(hi > lo, "variance should grow with x2: {lo} vs {hi}");
    }

    #[test]
    fn variance_is_never_negative() {
        let m = train_moments(11);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(-2.0..3.0)).collect();
            let q = Query::new_unchecked(c, rng.random_range(0.01..1.0));
            assert!(m.predict(&q).unwrap().variance >= 0.0);
        }
    }

    #[test]
    fn untrained_model_errors() {
        let m = MomentsModel::new(ModelConfig::paper_defaults(1)).unwrap();
        assert!(m.predict(&Query::new_unchecked(vec![0.0], 0.1)).is_err());
    }
}
