//! The query vector `q = [x, θ]` (paper Definition 4) and the joint
//! similarity measure (Definition 5).

use crate::error::CoreError;
use regq_linalg::vector;
use serde::{Deserialize, Serialize};

/// A radius (dNN) analytics query: center `x ∈ R^d` and radius `θ > 0`,
/// treated as one `(d+1)`-dimensional vector in the query space `Q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Query center `x`.
    pub center: Vec<f64>,
    /// Query radius `θ`.
    pub radius: f64,
}

impl Query {
    /// Construct a query, validating finiteness and radius positivity.
    ///
    /// # Errors
    /// [`CoreError::NonFinite`] for NaN/inf input;
    /// [`CoreError::InvalidConfig`] for a non-positive radius.
    pub fn new(center: Vec<f64>, radius: f64) -> Result<Self, CoreError> {
        if !vector::all_finite(&center) || !radius.is_finite() {
            return Err(CoreError::NonFinite {
                location: "Query::new",
            });
        }
        if radius <= 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "query radius must be positive, got {radius}"
            )));
        }
        Ok(Query { center, radius })
    }

    /// Construct without validation (hot paths with already-checked input).
    pub fn new_unchecked(center: Vec<f64>, radius: f64) -> Self {
        Query { center, radius }
    }

    /// Input dimensionality `d` (the joint query vector has `d + 1`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Squared joint `L2` distance (Definition 5):
    /// `‖q − q'‖₂² = ‖x − x'‖₂² + (θ − θ')²`.
    #[inline]
    pub fn sq_dist(&self, other: &Query) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let dr = self.radius - other.radius;
        vector::sq_dist(&self.center, &other.center) + dr * dr
    }

    /// Joint `L2` distance (Definition 5).
    #[inline]
    pub fn dist(&self, other: &Query) -> f64 {
        self.sq_dist(other).sqrt()
    }

    /// Squared joint distance to raw `(center, radius)` components —
    /// avoids materializing a `Query` on the winner-search hot path.
    #[inline]
    pub fn sq_dist_parts(&self, center: &[f64], radius: f64) -> f64 {
        debug_assert_eq!(self.dim(), center.len());
        let dr = self.radius - radius;
        vector::sq_dist(&self.center, center) + dr * dr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_radius() {
        assert!(Query::new(vec![0.0], 0.1).is_ok());
        assert!(matches!(
            Query::new(vec![0.0], 0.0),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            Query::new(vec![0.0], -1.0),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn new_rejects_non_finite() {
        assert!(matches!(
            Query::new(vec![f64::NAN], 0.1),
            Err(CoreError::NonFinite { .. })
        ));
        assert!(matches!(
            Query::new(vec![0.0], f64::INFINITY),
            Err(CoreError::NonFinite { .. })
        ));
    }

    #[test]
    fn joint_distance_matches_definition_5() {
        let a = Query::new(vec![0.0, 0.0], 0.5).unwrap();
        let b = Query::new(vec![3.0, 4.0], 0.5).unwrap();
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        // Radius difference contributes quadratically.
        let c = Query::new(vec![0.0, 0.0], 1.5).unwrap();
        assert!((a.sq_dist(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dist_parts_equals_dist() {
        let a = Query::new(vec![0.1, 0.2], 0.3).unwrap();
        let b = Query::new(vec![-0.4, 0.9], 0.7).unwrap();
        assert_eq!(a.sq_dist(&b), a.sq_dist_parts(&b.center, b.radius));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Query::new(vec![1.0, 2.0], 0.4).unwrap();
        let b = Query::new(vec![0.0, -1.0], 0.9).unwrap();
        assert_eq!(a.sq_dist(&b), b.sq_dist(&a));
        assert_eq!(a.sq_dist(&a), 0.0);
    }
}
