//! Prediction-confidence assessment (paper desideratum **D2**: "can the
//! system provide these linear regression models … *with high
//! confidence*?").
//!
//! The model can always produce a number — even for a query ball in a
//! region no analyst ever explored (Algorithm 2's closest-prototype
//! fallback). A serving layer needs to know *when to trust it*. This
//! extension scores each query on three interpretable axes:
//!
//! * **overlap mass** — the raw (unnormalized) `Σ δ(q, w_k)` over `W(q)`:
//!   how much of the query ball is covered by learned subspaces;
//! * **support maturity** — the `δ̃`-weighted SGD update count of the
//!   contributing prototypes: how well-trained the local models are;
//! * **proximity** — the joint distance to the winner relative to the
//!   vigilance `ρ`: beyond `ρ` the answer is an extrapolation.
//!
//! The combined `score ∈ [0, 1]` is a *heuristic* (the paper does not
//! define one); its component axes are exact model quantities, and the
//! tests pin the monotonicity properties that make it usable for
//! serve-or-fall-back-to-DBMS routing.
//!
//! # Route consistency
//!
//! The assessment is derived from the **same fusion driver** the
//! prediction algorithms run ([`crate::predict`]'s overlap-weight
//! resolution), not from a parallel re-scan of the prototype set. The two
//! can therefore never disagree about the path taken: whenever the served
//! answer falls back to the winner prototype — empty `W(q)`, or the
//! zero-total-weight case where every member of a non-empty overlap set is
//! exactly tangent to the query ball — [`Confidence::fused`] is `false`,
//! `overlap_mass` is 0 and `support_updates` is the winner's update count,
//! matching what the prediction actually used.

use crate::arena::PrototypeArena;
use crate::error::CoreError;
use crate::model::LlmModel;
use crate::predict::{self, FusionInfo, LocalModel};
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// Update count at which a prototype is considered half-mature.
const MATURITY_HALF_LIFE: f64 = 20.0;

/// Confidence breakdown for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confidence {
    /// Raw overlap mass `Σ δ(q, w_k)` over the fused neighborhood (0 when
    /// the prediction fell back to the winner prototype).
    pub overlap_mass: f64,
    /// `δ̃`-weighted mean update count of contributing prototypes (the
    /// winner's count on the fallback path).
    pub support_updates: f64,
    /// Joint distance to the winner divided by the vigilance `ρ`
    /// (> 1 means the answer extrapolates beyond the quantization cell).
    pub winner_distance_ratio: f64,
    /// `true` when the prediction fused `W(q)` with normalized weights;
    /// `false` when it extrapolated from the winner prototype (the
    /// serve-path fallback — empty or all-tangent overlap set).
    pub fused: bool,
    /// Combined score in `[0, 1]`.
    pub score: f64,
}

/// Fold the three axes into a [`Confidence`] (shared by the model, the
/// snapshot and the cross-shard fusion paths so the heuristic is combined
/// identically everywhere).
pub(crate) fn combine(
    winner_sq: f64,
    rho: f64,
    support_updates: f64,
    info: FusionInfo,
) -> Confidence {
    let winner_distance_ratio = winner_sq.sqrt() / rho;
    // Heuristic combination: each axis maps to [0, 1] and the score is
    // their product, with a floor on the mass term so a mature, nearby
    // winner still yields a usable (if discounted) score on the fallback
    // path.
    let mass_term = info.mass / (1.0 + info.mass);
    let maturity = support_updates / (support_updates + MATURITY_HALF_LIFE);
    let proximity = 1.0 / (1.0 + (winner_distance_ratio - 1.0).max(0.0));
    let score = (0.25 + 0.75 * mass_term) * maturity * proximity;
    Confidence {
        overlap_mass: info.mass,
        support_updates,
        winner_distance_ratio,
        fused: info.fused,
        score: score.clamp(0.0, 1.0),
    }
}

/// Confidence over an arena; `None` on an empty arena. Runs the *same*
/// overlap-weight driver as prediction (see module docs).
pub(crate) fn confidence_over_arena(
    arena: &PrototypeArena,
    rho: f64,
    q: &Query,
) -> Option<Confidence> {
    let (winner, winner_sq) = arena.winner(&q.center, q.radius)?;
    let mut support_updates = 0.0;
    let info =
        predict::for_each_overlap_weight_with_winner(arena, &q.center, q.radius, winner, |k, w| {
            support_updates += w * arena.updates(k) as f64;
        });
    Some(combine(winner_sq, rho, support_updates, info))
}

/// Q1 prediction and confidence from **one** overlap resolution (the
/// serve-path fast path: a routing layer needs both, and the fused answer
/// plus its assessment come out of one overlap scan plus the winner scan
/// the assessment needs anyway — the fallback branch reuses that winner
/// instead of scanning again). `None` on an empty arena.
pub(crate) fn q1_with_confidence_over_arena(
    arena: &PrototypeArena,
    rho: f64,
    q: &Query,
) -> Option<(f64, Confidence)> {
    let (winner, winner_sq) = arena.winner(&q.center, q.radius)?;
    let mut yhat = 0.0;
    let mut support_updates = 0.0;
    let info =
        predict::for_each_overlap_weight_with_winner(arena, &q.center, q.radius, winner, |k, w| {
            yhat += w * arena.eval(k, &q.center, q.radius);
            support_updates += w * arena.updates(k) as f64;
        });
    Some((yhat, combine(winner_sq, rho, support_updates, info)))
}

/// Q2 list and confidence from one overlap resolution (the Q2 sibling of
/// [`q1_with_confidence_over_arena`] — a routing layer scores and serves
/// the list from the same scan). `None` on an empty arena.
pub(crate) fn q2_with_confidence_over_arena(
    arena: &PrototypeArena,
    rho: f64,
    q: &Query,
) -> Option<(Vec<LocalModel>, Confidence)> {
    let (winner, winner_sq) = arena.winner(&q.center, q.radius)?;
    let mut s = Vec::new();
    let mut support_updates = 0.0;
    let info =
        predict::for_each_overlap_weight_with_winner(arena, &q.center, q.radius, winner, |k, w| {
            s.push(predict::local_model_at(arena, k, w));
            support_updates += w * arena.updates(k) as f64;
        });
    Some((s, combine(winner_sq, rho, support_updates, info)))
}

impl LlmModel {
    /// Assess prediction confidence for a query (extension; see module
    /// docs for the axes and the heuristic combination).
    ///
    /// # Errors
    /// [`CoreError::EmptyModel`] on an untrained model;
    /// [`CoreError::DimensionMismatch`] on a wrong-dimension query.
    pub fn confidence(&self, q: &Query) -> Result<Confidence, CoreError> {
        if q.dim() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: q.dim(),
            });
        }
        confidence_over_arena(self.arena(), self.config().rho(), q).ok_or(CoreError::EmptyModel)
    }

    /// Predict Q1 together with its confidence, resolving the overlap
    /// neighborhood **once** (the serving layers route on the score and
    /// serve the value from the same scan).
    ///
    /// # Errors
    /// Same as [`LlmModel::predict_q1`].
    pub fn predict_q1_with_confidence(&self, q: &Query) -> Result<(f64, Confidence), CoreError> {
        if q.dim() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: q.dim(),
            });
        }
        q1_with_confidence_over_arena(self.arena(), self.config().rho(), q)
            .ok_or(CoreError::EmptyModel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained(seed: u64) -> LlmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
        cfg.gamma = 1e-3;
        let mut m = LlmModel::new(cfg).unwrap();
        let stream = (0..30_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] + c[1];
            (Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
        });
        m.fit_stream(stream).unwrap();
        m
    }

    fn q(center: &[f64], r: f64) -> Query {
        Query::new_unchecked(center.to_vec(), r)
    }

    #[test]
    fn in_distribution_queries_score_high() {
        let m = trained(1);
        // Probe at a mature prototype's own ball: overlap is guaranteed
        // (δ = 1 for the coincident prototype) and support is maximal.
        let protos = m.prototypes();
        let p = protos
            .iter()
            .max_by_key(|p| p.updates)
            .expect("trained model");
        let c = m.confidence(&q(&p.center, p.radius)).unwrap();
        assert!(c.overlap_mass >= 1.0 - 1e-9, "mass {}", c.overlap_mass);
        assert!(c.score > 0.4, "score {}", c.score);
        assert!(c.winner_distance_ratio < 1.0);
    }

    #[test]
    fn far_extrapolation_scores_low() {
        let m = trained(2);
        let near = m.confidence(&q(&[0.5, 0.5], 0.1)).unwrap();
        let far = m.confidence(&q(&[30.0, 30.0], 0.1)).unwrap();
        assert_eq!(far.overlap_mass, 0.0);
        assert!(far.winner_distance_ratio > 1.0);
        assert!(
            far.score < near.score / 3.0,
            "near {} far {}",
            near.score,
            far.score
        );
    }

    #[test]
    fn score_decreases_monotonically_with_distance() {
        let m = trained(3);
        let mut last = f64::INFINITY;
        for step in 0..6 {
            let x = 0.5 + step as f64 * 2.0;
            let c = m.confidence(&q(&[x, 0.5], 0.1)).unwrap();
            assert!(
                c.score <= last + 1e-12,
                "score rose at x = {x}: {} > {last}",
                c.score
            );
            last = c.score;
        }
    }

    #[test]
    fn fresh_prototype_support_is_flagged_immature() {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        m.train_step(&q(&[0.5, 0.5], 0.1), 1.0).unwrap();
        let c = m.confidence(&q(&[0.5, 0.5], 0.1)).unwrap();
        // A single-update prototype: maturity term ~ 1/21.
        assert!(c.support_updates <= 1.0 + 1e-9);
        assert!(c.score < 0.1, "score {}", c.score);
    }

    #[test]
    fn predict_with_confidence_matches_parts() {
        let m = trained(4);
        let query = q(&[0.4, 0.6], 0.1);
        let (y, c) = m.predict_q1_with_confidence(&query).unwrap();
        assert_eq!(y, m.predict_q1(&query).unwrap());
        assert_eq!(c, m.confidence(&query).unwrap());
    }

    #[test]
    fn fused_flag_tracks_the_fusion_path() {
        let m = trained(8);
        let protos = m.prototypes();
        let p = protos.iter().max_by_key(|p| p.updates).unwrap();
        let near = m.confidence(&q(&p.center, p.radius)).unwrap();
        assert!(near.fused, "coincident probe must fuse");
        let far = m.confidence(&q(&[40.0, -40.0], 0.05)).unwrap();
        assert!(!far.fused, "empty W(q) must report the fallback route");
        assert_eq!(far.overlap_mass, 0.0);
    }

    #[test]
    fn all_tangent_overlap_is_scored_as_the_fallback_it_serves() {
        // Regression (the PR 4 zero-total-weight family): a query ball
        // exactly tangent to every prototype ball makes the fusion fall
        // back to the winner prototype (today the δ > 0 membership filter
        // yields an *empty* set for this geometry; the non-empty
        // zero-total variant of the same decision is pinned directly in
        // `predict::fuse_weights_from_set`'s unit test). The confidence
        // assessment must describe that same path — winner support, zero
        // mass, fused = false — not a phantom fused route, because it now
        // *derives from* the prediction's own overlap-weight resolution.
        let mut cfg = ModelConfig::paper_defaults(2);
        cfg.vigilance_override = Some(1e-9);
        let mut m = LlmModel::new(cfg).unwrap();
        for _ in 0..3 {
            m.train_step(&q(&[0.0, 0.0], 0.5), 1.0).unwrap();
            m.train_step(&q(&[2.0, 0.0], 0.5), 5.0).unwrap();
        }
        assert_eq!(m.k(), 2);
        // Tangent to both prototypes: center distance 1.0 == 0.5 + 0.5.
        let tangent = q(&[1.0, 0.0], 0.5);
        assert!(m.overlap_set(&tangent).is_empty());
        let (j, _) = m.winner(&tangent).unwrap();

        let (y, c) = m.predict_q1_with_confidence(&tangent).unwrap();
        // The served value took the winner fallback …
        assert_eq!(y, m.arena().eval(j, &tangent.center, tangent.radius));
        // … and the confidence reports exactly that route.
        assert!(!c.fused);
        assert_eq!(c.overlap_mass, 0.0);
        assert_eq!(c.support_updates, m.arena().updates(j) as f64);
        assert_eq!(c, m.confidence(&tangent).unwrap());
    }

    #[test]
    fn errors_mirror_prediction_errors() {
        let empty = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        assert!(matches!(
            empty.confidence(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        let m = trained(5);
        assert!(matches!(
            m.confidence(&q(&[0.5], 0.1)),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn score_is_always_in_unit_interval() {
        let m = trained(6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(-5.0..5.0)).collect();
            let conf = m
                .confidence(&Query::new_unchecked(c, rng.random_range(0.01..2.0)))
                .unwrap();
            assert!((0.0..=1.0).contains(&conf.score));
        }
    }
}
