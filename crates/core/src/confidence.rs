//! Prediction-confidence assessment (paper desideratum **D2**: "can the
//! system provide these linear regression models … *with high
//! confidence*?").
//!
//! The model can always produce a number — even for a query ball in a
//! region no analyst ever explored (Algorithm 2's closest-prototype
//! fallback). A serving layer needs to know *when to trust it*. This
//! extension scores each query on three interpretable axes:
//!
//! * **overlap mass** — the raw (unnormalized) `Σ δ(q, w_k)` over `W(q)`:
//!   how much of the query ball is covered by learned subspaces;
//! * **support maturity** — the `δ̃`-weighted SGD update count of the
//!   contributing prototypes: how well-trained the local models are;
//! * **proximity** — the joint distance to the winner relative to the
//!   vigilance `ρ`: beyond `ρ` the answer is an extrapolation.
//!
//! The combined `score ∈ [0, 1]` is a *heuristic* (the paper does not
//! define one); its component axes are exact model quantities, and the
//! tests pin the monotonicity properties that make it usable for
//! serve-or-fall-back-to-DBMS routing.

use crate::error::CoreError;
use crate::model::LlmModel;
use crate::overlap::overlap_degree_parts;
use crate::query::Query;
use serde::{Deserialize, Serialize};

/// Update count at which a prototype is considered half-mature.
const MATURITY_HALF_LIFE: f64 = 20.0;

/// Confidence breakdown for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Confidence {
    /// Raw overlap mass `Σ δ(q, w_k)` (0 = no learned subspace overlaps).
    pub overlap_mass: f64,
    /// `δ̃`-weighted mean update count of contributing prototypes (the
    /// winner's count when `W(q) = ∅`).
    pub support_updates: f64,
    /// Joint distance to the winner divided by the vigilance `ρ`
    /// (> 1 means the answer extrapolates beyond the quantization cell).
    pub winner_distance_ratio: f64,
    /// Combined score in `[0, 1]`.
    pub score: f64,
}

impl LlmModel {
    /// Assess prediction confidence for a query (extension; see module
    /// docs for the axes and the heuristic combination).
    ///
    /// # Errors
    /// [`CoreError::EmptyModel`] on an untrained model;
    /// [`CoreError::DimensionMismatch`] on a wrong-dimension query.
    pub fn confidence(&self, q: &Query) -> Result<Confidence, CoreError> {
        if q.dim() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: q.dim(),
            });
        }
        let Some((winner, winner_sq)) = self.winner(q) else {
            return Err(CoreError::EmptyModel);
        };
        let rho = self.config().rho();
        let winner_distance_ratio = winner_sq.sqrt() / rho;

        let mut mass = 0.0;
        let mut weighted_updates = 0.0;
        let arena = self.arena();
        for k in 0..arena.len() {
            let d = overlap_degree_parts(&q.center, q.radius, arena.center(k), arena.radius(k));
            if d > 0.0 {
                mass += d;
                weighted_updates += d * arena.updates(k) as f64;
            }
        }
        let support_updates = if mass > 0.0 {
            weighted_updates / mass
        } else {
            arena.updates(winner) as f64
        };

        // Heuristic combination: each axis maps to [0, 1] and the score is
        // their product, with a floor on the mass term so a mature, nearby
        // winner still yields a usable (if discounted) score when W(q) is
        // empty.
        let mass_term = mass / (1.0 + mass);
        let maturity = support_updates / (support_updates + MATURITY_HALF_LIFE);
        let proximity = 1.0 / (1.0 + (winner_distance_ratio - 1.0).max(0.0));
        let score = (0.25 + 0.75 * mass_term) * maturity * proximity;

        Ok(Confidence {
            overlap_mass: mass,
            support_updates,
            winner_distance_ratio,
            score: score.clamp(0.0, 1.0),
        })
    }

    /// Predict Q1 together with its confidence (convenience for serving
    /// layers that route low-confidence queries back to the DBMS).
    ///
    /// # Errors
    /// Same as [`LlmModel::predict_q1`].
    pub fn predict_q1_with_confidence(&self, q: &Query) -> Result<(f64, Confidence), CoreError> {
        let y = self.predict_q1(q)?;
        let c = self.confidence(q)?;
        Ok((y, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained(seed: u64) -> LlmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
        cfg.gamma = 1e-3;
        let mut m = LlmModel::new(cfg).unwrap();
        let stream = (0..30_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] + c[1];
            (Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
        });
        m.fit_stream(stream).unwrap();
        m
    }

    fn q(center: &[f64], r: f64) -> Query {
        Query::new_unchecked(center.to_vec(), r)
    }

    #[test]
    fn in_distribution_queries_score_high() {
        let m = trained(1);
        // Probe at a mature prototype's own ball: overlap is guaranteed
        // (δ = 1 for the coincident prototype) and support is maximal.
        let protos = m.prototypes();
        let p = protos
            .iter()
            .max_by_key(|p| p.updates)
            .expect("trained model");
        let c = m.confidence(&q(&p.center, p.radius)).unwrap();
        assert!(c.overlap_mass >= 1.0 - 1e-9, "mass {}", c.overlap_mass);
        assert!(c.score > 0.4, "score {}", c.score);
        assert!(c.winner_distance_ratio < 1.0);
    }

    #[test]
    fn far_extrapolation_scores_low() {
        let m = trained(2);
        let near = m.confidence(&q(&[0.5, 0.5], 0.1)).unwrap();
        let far = m.confidence(&q(&[30.0, 30.0], 0.1)).unwrap();
        assert_eq!(far.overlap_mass, 0.0);
        assert!(far.winner_distance_ratio > 1.0);
        assert!(
            far.score < near.score / 3.0,
            "near {} far {}",
            near.score,
            far.score
        );
    }

    #[test]
    fn score_decreases_monotonically_with_distance() {
        let m = trained(3);
        let mut last = f64::INFINITY;
        for step in 0..6 {
            let x = 0.5 + step as f64 * 2.0;
            let c = m.confidence(&q(&[x, 0.5], 0.1)).unwrap();
            assert!(
                c.score <= last + 1e-12,
                "score rose at x = {x}: {} > {last}",
                c.score
            );
            last = c.score;
        }
    }

    #[test]
    fn fresh_prototype_support_is_flagged_immature() {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        m.train_step(&q(&[0.5, 0.5], 0.1), 1.0).unwrap();
        let c = m.confidence(&q(&[0.5, 0.5], 0.1)).unwrap();
        // A single-update prototype: maturity term ~ 1/21.
        assert!(c.support_updates <= 1.0 + 1e-9);
        assert!(c.score < 0.1, "score {}", c.score);
    }

    #[test]
    fn predict_with_confidence_matches_parts() {
        let m = trained(4);
        let query = q(&[0.4, 0.6], 0.1);
        let (y, c) = m.predict_q1_with_confidence(&query).unwrap();
        assert_eq!(y, m.predict_q1(&query).unwrap());
        assert_eq!(c, m.confidence(&query).unwrap());
    }

    #[test]
    fn errors_mirror_prediction_errors() {
        let empty = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        assert!(matches!(
            empty.confidence(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        let m = trained(5);
        assert!(matches!(
            m.confidence(&q(&[0.5], 0.1)),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn score_is_always_in_unit_interval() {
        let m = trained(6);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(-5.0..5.0)).collect();
            let conf = m
                .confidence(&Query::new_unchecked(c, rng.random_range(0.01..2.0)))
                .unwrap();
            assert!((0.0..=1.0).contains(&conf.score));
        }
    }
}
