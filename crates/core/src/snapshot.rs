//! The immutable serving half of the train/serve split:
//! [`ServingSnapshot`].
//!
//! [`LlmModel`] is a *mutable trainer*: Algorithm 1
//! updates its arena in place, so it cannot be shared between an online
//! training thread and concurrent readers. A [`ServingSnapshot`] is the
//! publishable counterpart: an immutable, cheaply-clonable (`Arc`-backed)
//! capture of the learned parameter set `α` — the packed
//! [`PrototypeArena`] plus the per-prototype update counts the
//! [`crate::confidence`] assessment needs — together with the
//! configuration that fixes the vigilance `ρ`.
//!
//! Every prediction algorithm on the snapshot delegates to the *same*
//! arena-level drivers as the model ([`crate::predict`] /
//! [`crate::confidence`]), so a snapshot taken at step `t` answers every
//! query **bit-identically** to the model frozen at step `t` — the
//! invariant the serving layer's equivalence proptests pin.
//!
//! Cost model: taking a snapshot clones the arena (`O(dK)` — the publish
//! cost, paid by the trainer at publication cadence); cloning a
//! `ServingSnapshot` bumps an `Arc` (the reader cost, paid by threads that
//! pin a version across queries).

use crate::arena::{BatchResolution, BlockLayout, PrototypeArena, ScreenCounters};
use crate::confidence::{self, Confidence};
use crate::config::ModelConfig;
use crate::error::CoreError;
use crate::model::LlmModel;
use crate::predict::{self, FusionInfo, LocalModel};
use crate::prototype::Prototype;
use crate::query::Query;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Reusable batch-resolution scratch for the snapshot batch
    /// predictors — like the scalar path's overlap scratch, it keeps the
    /// batched serving path allocation-free per call in steady state.
    static BATCH_SCRATCH: RefCell<BatchResolution> = RefCell::new(BatchResolution::new());

    /// Per-part resolutions plus the merged-entry buffer for the sharded
    /// batch predictors.
    #[allow(clippy::type_complexity)]
    static SHARD_BATCH_SCRATCH: RefCell<(Vec<BatchResolution>, Vec<(usize, usize, usize, f64)>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

#[derive(Debug)]
struct Inner {
    config: ModelConfig,
    arena: PrototypeArena,
    /// The clustered, bounds-cached pruned serving layout over `arena` —
    /// built once at capture (`O(dK + K log K)`, amortized over every
    /// query served from this version) and immutable thereafter, like
    /// everything else in the capture.
    layout: BlockLayout,
    /// Training steps the source model had consumed at capture time — the
    /// snapshot's natural, monotonically increasing version.
    steps: u64,
    frozen: bool,
}

/// An immutable, cheaply-clonable capture of a trained model's parameters
/// — the unit of publication from a trainer to concurrent serving threads
/// (see the module docs for the split and the cost model).
#[derive(Debug, Clone)]
pub struct ServingSnapshot {
    inner: Arc<Inner>,
}

impl ServingSnapshot {
    /// Capture the model's current parameters (clones the arena and
    /// builds the pruned serving layout; `O(dK + K log K)`).
    pub fn capture(model: &LlmModel) -> Self {
        let arena = model.arena().clone();
        let layout = arena.build_layout();
        ServingSnapshot {
            inner: Arc::new(Inner {
                config: model.config().clone(),
                arena,
                layout,
                steps: model.steps(),
                frozen: model.is_frozen(),
            }),
        }
    }

    /// Rebuild a mutable [`LlmModel`] carrying this snapshot's parameters
    /// (persistence and warm-started trainers; `O(dK)`).
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] / [`CoreError::DimensionMismatch`] if
    /// the snapshot was built from inconsistent parts (impossible through
    /// [`ServingSnapshot::capture`]).
    pub fn to_model(&self) -> Result<LlmModel, CoreError> {
        LlmModel::from_parts_public(
            self.inner.config.clone(),
            self.prototypes(),
            self.inner.steps,
            self.inner.frozen,
        )
    }

    /// The model configuration at capture time.
    pub fn config(&self) -> &ModelConfig {
        &self.inner.config
    }

    /// The packed prototype storage (the learned parameters `α`).
    pub fn arena(&self) -> &PrototypeArena {
        &self.inner.arena
    }

    /// Owned prototype set (API-edge materialization; allocates).
    pub fn prototypes(&self) -> Vec<Prototype> {
        self.inner.arena.to_prototypes()
    }

    /// Number of prototypes `K`.
    pub fn k(&self) -> usize {
        self.inner.arena.len()
    }

    /// Input dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.inner.config.dim
    }

    /// Training steps the source model had consumed at capture time. Two
    /// snapshots of one trainer with equal versions hold identical
    /// parameters, and versions grow monotonically with training — the
    /// natural publication epoch.
    pub fn version(&self) -> u64 {
        self.inner.steps
    }

    /// Whether the source model had converged (frozen) at capture time.
    pub fn is_frozen(&self) -> bool {
        self.inner.frozen
    }

    /// `true` when two snapshots share the same underlying capture (an
    /// `Arc` identity check — cheap, no parameter comparison).
    pub fn same_capture(&self, other: &ServingSnapshot) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn check_query(&self, q: &Query) -> Result<(), CoreError> {
        if q.dim() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: q.dim(),
            });
        }
        if self.k() == 0 {
            return Err(CoreError::EmptyModel);
        }
        Ok(())
    }

    /// Winner search (index + squared joint distance); `None` when empty.
    pub fn winner(&self, q: &Query) -> Option<(usize, f64)> {
        self.inner.arena.winner(&q.center, q.radius)
    }

    /// The overlap neighborhood `W(q)`, appended to `out` (cleared first).
    pub fn overlap_set_into(&self, q: &Query, out: &mut Vec<(usize, f64)>) {
        self.inner.arena.overlap_set_into(&q.center, q.radius, out);
    }

    /// Algorithm 2 (Q1) — bit-identical to
    /// [`LlmModel::predict_q1`] on the captured parameters.
    ///
    /// # Errors
    /// [`CoreError::EmptyModel`] on an empty snapshot,
    /// [`CoreError::DimensionMismatch`] on a wrong-dimension query.
    pub fn predict_q1(&self, q: &Query) -> Result<f64, CoreError> {
        self.check_query(q)?;
        Ok(predict::q1_over_arena(&self.inner.arena, q))
    }

    /// Algorithm 3 (Q2) — bit-identical to [`LlmModel::predict_q2`].
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn predict_q2(&self, q: &Query) -> Result<Vec<LocalModel>, CoreError> {
        self.check_query(q)?;
        Ok(predict::q2_over_arena(&self.inner.arena, q))
    }

    /// Eq. 14 (data value) — bit-identical to
    /// [`LlmModel::predict_value`].
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`], plus a dimension check on
    /// `x`.
    pub fn predict_value(&self, q: &Query, x: &[f64]) -> Result<f64, CoreError> {
        self.check_query(q)?;
        if x.len() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        Ok(predict::value_over_arena(&self.inner.arena, q, x))
    }

    /// Confidence assessment — bit-identical to [`LlmModel::confidence`].
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn confidence(&self, q: &Query) -> Result<Confidence, CoreError> {
        self.check_query(q)?;
        confidence::confidence_over_arena(&self.inner.arena, self.inner.config.rho(), q)
            .ok_or(CoreError::EmptyModel)
    }

    /// Q1 prediction and confidence from one overlap resolution (the
    /// routing fast path) — bit-identical to
    /// [`LlmModel::predict_q1_with_confidence`].
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn predict_q1_with_confidence(&self, q: &Query) -> Result<(f64, Confidence), CoreError> {
        self.check_query(q)?;
        confidence::q1_with_confidence_over_arena(&self.inner.arena, self.inner.config.rho(), q)
            .ok_or(CoreError::EmptyModel)
    }

    /// Q2 list and confidence from one overlap resolution (the routing
    /// fast path for `LINREG`) — the list is bit-identical to
    /// [`ServingSnapshot::predict_q2`], the confidence to
    /// [`ServingSnapshot::confidence`].
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn predict_q2_with_confidence(
        &self,
        q: &Query,
    ) -> Result<(Vec<LocalModel>, Confidence), CoreError> {
        self.check_query(q)?;
        confidence::q2_with_confidence_over_arena(&self.inner.arena, self.inner.config.rho(), q)
            .ok_or(CoreError::EmptyModel)
    }

    // ---- Batched serving -------------------------------------------------
    //
    // One fused winner+overlap pass over the arena per query block
    // (`PrototypeArena::resolve_batch`), then the *same* per-query fusion
    // fold the scalar path runs (`predict::fuse_weights_from_set`). Every
    // batch answer is therefore **bit-identical** to the corresponding
    // scalar call on the same snapshot — the equivalence contract this
    // reproduction chose (see the `batch_equivalence` test battery) over
    // the re-baselined-tolerance alternative.

    /// Shared driver of the batch predictors: validate, resolve the batch
    /// in the thread-local scratch, then fold each query. An empty batch
    /// short-circuits to an empty result *before* the model checks, so a
    /// zero-length request never errors.
    fn batch_fold<T>(
        &self,
        queries: &[Query],
        mut per_query: impl FnMut(&PrototypeArena, &Query, (usize, f64), &[(usize, f64)]) -> T,
    ) -> Result<Vec<T>, CoreError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        for q in queries {
            self.check_query(q)?;
        }
        BATCH_SCRATCH.with(|scratch| {
            let mut res = scratch.borrow_mut();
            let arena = &self.inner.arena;
            arena.resolve_batch(queries, &mut res);
            Ok(queries
                .iter()
                .enumerate()
                .map(|(i, q)| per_query(arena, q, res.winner(i), res.overlap(i)))
                .collect())
        })
    }

    /// Batched Algorithm 2 (Q1): `out[i]` is bit-identical to
    /// [`ServingSnapshot::predict_q1`] on `queries[i]`, computed from one
    /// fused pass over the arena per query block.
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] on the first wrong-dimension
    /// query, [`CoreError::EmptyModel`] on an empty snapshot (a
    /// zero-length batch returns `Ok(vec![])` without either check).
    pub fn predict_q1_batch(&self, queries: &[Query]) -> Result<Vec<f64>, CoreError> {
        self.batch_fold(queries, |arena, q, (wk, _), set| {
            let mut yhat = 0.0;
            predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    yhat += w * arena.eval(k, &q.center, q.radius);
                },
            );
            yhat
        })
    }

    /// Batched Algorithm 3 (Q2): `out[i]` is bit-identical to
    /// [`ServingSnapshot::predict_q2`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn predict_q2_batch(&self, queries: &[Query]) -> Result<Vec<Vec<LocalModel>>, CoreError> {
        self.batch_fold(queries, |arena, _, (wk, _), set| {
            let mut s = Vec::new();
            predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    s.push(predict::local_model_at(arena, k, w));
                },
            );
            s
        })
    }

    /// Batched Eq. 14 (data value): `out[i]` is bit-identical to
    /// [`ServingSnapshot::predict_value`] on `(queries[i], xs[i])`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`], plus a dimension
    /// check on every probe point.
    ///
    /// # Panics
    /// Panics when `queries` and `xs` have different lengths (a malformed
    /// request shape, as with ragged slices in the kernels below).
    pub fn predict_value_batch(
        &self,
        queries: &[Query],
        xs: &[Vec<f64>],
    ) -> Result<Vec<f64>, CoreError> {
        assert_eq!(
            queries.len(),
            xs.len(),
            "predict_value_batch: query/probe length mismatch"
        );
        for x in xs {
            if x.len() != self.dim() {
                return Err(CoreError::DimensionMismatch {
                    expected: self.dim(),
                    actual: x.len(),
                });
            }
        }
        let mut i = 0usize;
        self.batch_fold(queries, |arena, _, (wk, _), set| {
            let x = &xs[i];
            i += 1;
            let mut uhat = 0.0;
            predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    uhat += w * arena.eval_at_own_radius(k, x);
                },
            );
            uhat
        })
    }

    /// Batched confidence assessment: `out[i]` is bit-identical to
    /// [`ServingSnapshot::confidence`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn confidence_batch(&self, queries: &[Query]) -> Result<Vec<Confidence>, CoreError> {
        let rho = self.inner.config.rho();
        self.batch_fold(queries, |arena, _, (wk, wsq), set| {
            let mut support_updates = 0.0;
            let info = predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    support_updates += w * arena.updates(k) as f64;
                },
            );
            confidence::combine(wsq, rho, support_updates, info)
        })
    }

    /// Batched Q1 + confidence (the serving layers' routing fast path,
    /// batch form): `out[i]` is bit-identical to
    /// [`ServingSnapshot::predict_q1_with_confidence`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn predict_q1_with_confidence_batch(
        &self,
        queries: &[Query],
    ) -> Result<Vec<(f64, Confidence)>, CoreError> {
        let rho = self.inner.config.rho();
        self.batch_fold(queries, |arena, q, (wk, wsq), set| {
            let mut yhat = 0.0;
            let mut support_updates = 0.0;
            let info = predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    yhat += w * arena.eval(k, &q.center, q.radius);
                    support_updates += w * arena.updates(k) as f64;
                },
            );
            (yhat, confidence::combine(wsq, rho, support_updates, info))
        })
    }

    /// Batched Q2 + confidence: `out[i]` is bit-identical to
    /// [`ServingSnapshot::predict_q2_with_confidence`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn predict_q2_with_confidence_batch(
        &self,
        queries: &[Query],
    ) -> Result<Vec<(Vec<LocalModel>, Confidence)>, CoreError> {
        let rho = self.inner.config.rho();
        self.batch_fold(queries, |arena, _, (wk, wsq), set| {
            let mut s = Vec::new();
            let mut support_updates = 0.0;
            let info = predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    s.push(predict::local_model_at(arena, k, w));
                    support_updates += w * arena.updates(k) as f64;
                },
            );
            (s, confidence::combine(wsq, rho, support_updates, info))
        })
    }

    // ---- Two-phase pruned serving ----------------------------------------
    //
    // Same fusion folds as the batched path above, but the winner/overlap
    // resolution comes from the capture-time [`BlockLayout`]: a
    // conservative screening pass discards prototype blocks that provably
    // cannot contain the winner or any overlapping ball, then the exact
    // kernel runs over the survivors only. Answers stay **bit-identical**
    // to the unpruned (and scalar) paths — the layout docs carry the
    // argument, the `pruned_equivalence` battery pins it — while the work
    // becomes output-sensitive on clustered prototype sets. Every pruning
    // decision is counted into the caller's [`ScreenCounters`], never
    // silent.

    /// The capture-time pruned serving layout (blocked, bounds-cached
    /// view of [`ServingSnapshot::arena`]).
    pub fn layout(&self) -> &BlockLayout {
        &self.inner.layout
    }

    /// [`Self::batch_fold`] with two-phase pruned resolution: identical
    /// validation, scratch and per-query fold; only the resolver differs
    /// (and its screening telemetry lands in `counters`).
    fn batch_fold_pruned<T>(
        &self,
        queries: &[Query],
        counters: &mut ScreenCounters,
        mut per_query: impl FnMut(&PrototypeArena, &Query, (usize, f64), &[(usize, f64)]) -> T,
    ) -> Result<Vec<T>, CoreError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        for q in queries {
            self.check_query(q)?;
        }
        BATCH_SCRATCH.with(|scratch| {
            let mut res = scratch.borrow_mut();
            let arena = &self.inner.arena;
            self.inner
                .layout
                .resolve_batch_pruned(queries, &mut res, counters);
            Ok(queries
                .iter()
                .enumerate()
                .map(|(i, q)| per_query(arena, q, res.winner(i), res.overlap(i)))
                .collect())
        })
    }

    /// Two-phase pruned Q1 + confidence — bit-identical to
    /// [`ServingSnapshot::predict_q1_with_confidence`], with screening
    /// telemetry accumulated into `counters`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn predict_q1_with_confidence_pruned(
        &self,
        q: &Query,
        counters: &mut ScreenCounters,
    ) -> Result<(f64, Confidence), CoreError> {
        let mut out =
            self.predict_q1_with_confidence_batch_pruned(std::slice::from_ref(q), counters)?;
        // INVARIANT: the batch driver returns exactly one answer per
        // query and we passed exactly one query.
        Ok(out.pop().expect("one query in, one answer out"))
    }

    /// Two-phase pruned Q2 + confidence — bit-identical to
    /// [`ServingSnapshot::predict_q2_with_confidence`], with screening
    /// telemetry accumulated into `counters`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1`].
    pub fn predict_q2_with_confidence_pruned(
        &self,
        q: &Query,
        counters: &mut ScreenCounters,
    ) -> Result<(Vec<LocalModel>, Confidence), CoreError> {
        let mut out =
            self.predict_q2_with_confidence_batch_pruned(std::slice::from_ref(q), counters)?;
        // INVARIANT: the batch driver returns exactly one answer per
        // query and we passed exactly one query.
        Ok(out.pop().expect("one query in, one answer out"))
    }

    /// Two-phase pruned batched Q1 + confidence: `out[i]` is
    /// bit-identical to
    /// [`ServingSnapshot::predict_q1_with_confidence`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn predict_q1_with_confidence_batch_pruned(
        &self,
        queries: &[Query],
        counters: &mut ScreenCounters,
    ) -> Result<Vec<(f64, Confidence)>, CoreError> {
        let rho = self.inner.config.rho();
        self.batch_fold_pruned(queries, counters, |arena, q, (wk, wsq), set| {
            let mut yhat = 0.0;
            let mut support_updates = 0.0;
            let info = predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    yhat += w * arena.eval(k, &q.center, q.radius);
                    support_updates += w * arena.updates(k) as f64;
                },
            );
            (yhat, confidence::combine(wsq, rho, support_updates, info))
        })
    }

    /// Two-phase pruned batched Q2 + confidence: `out[i]` is
    /// bit-identical to
    /// [`ServingSnapshot::predict_q2_with_confidence`] on `queries[i]`.
    ///
    /// # Errors
    /// Same as [`ServingSnapshot::predict_q1_batch`].
    pub fn predict_q2_with_confidence_batch_pruned(
        &self,
        queries: &[Query],
        counters: &mut ScreenCounters,
    ) -> Result<Vec<(Vec<LocalModel>, Confidence)>, CoreError> {
        let rho = self.inner.config.rho();
        self.batch_fold_pruned(queries, counters, |arena, _, (wk, wsq), set| {
            let mut s = Vec::new();
            let mut support_updates = 0.0;
            let info = predict::fuse_weights_from_set(
                set,
                || wk,
                |k, w| {
                    s.push(predict::local_model_at(arena, k, w));
                    support_updates += w * arena.updates(k) as f64;
                },
            );
            (s, confidence::combine(wsq, rho, support_updates, info))
        })
    }
}

impl LlmModel {
    /// Capture an immutable [`ServingSnapshot`] of the current parameters
    /// (the trainer side of the publication handshake; `O(dK)`).
    pub fn snapshot(&self) -> ServingSnapshot {
        ServingSnapshot::capture(self)
    }
}

/// One shard's contribution to a cross-shard fused prediction: the
/// shard's snapshot plus the **global** prototype id of each local arena
/// slot.
///
/// The sharded predictors ([`sharded_q1_with_confidence`] /
/// [`sharded_q2_with_confidence`]) reconstruct the single-arena answer
/// bit-for-bit from such parts, provided the sharding invariants hold:
///
/// * `ids.len() == snapshot.k()`, and `ids` is strictly ascending — a
///   shard holds its prototypes in global arena order (the shard fabric
///   assigns ids in arena order and only ever appends);
/// * ids are disjoint across the parts of one query;
/// * every part shares one [`ModelConfig`] (in particular one vigilance
///   `ρ` and one dimension).
#[derive(Debug, Clone, Copy)]
pub struct ShardPart<'a> {
    /// The shard's published snapshot.
    pub snapshot: &'a ServingSnapshot,
    /// Global prototype ids, one per arena slot, strictly ascending.
    pub ids: &'a [usize],
}

/// Global winner across parts: `(part, local index, squared distance)`.
/// Matches the single-arena first-wins tie-break — strict `<` on the
/// squared distance, lowest global id on ties. `None` when every part is
/// empty.
fn sharded_winner(parts: &[ShardPart<'_>], q: &Query) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize, f64, usize)> = None;
    for (pi, part) in parts.iter().enumerate() {
        debug_assert_eq!(part.ids.len(), part.snapshot.k(), "ids must map every slot");
        if let Some((lk, sq)) = part.snapshot.winner(q) {
            let gid = part.ids[lk];
            let better = match best {
                None => true,
                Some((_, _, best_sq, best_gid)) => {
                    sq < best_sq || (sq == best_sq && gid < best_gid)
                }
            };
            if better {
                best = Some((pi, lk, sq, gid));
            }
        }
    }
    best.map(|(pi, lk, sq, _)| (pi, lk, sq))
}

/// Resolve the merged overlap set across parts, **in global arena order**
/// (ascending global id), then hand each `(part, local, δ/total)` triple
/// to `apply` — or the winner with weight 1 on the degenerate path. This
/// is [`crate::predict`]'s overlap-weight driver re-run over a
/// partitioned arena: because per-prototype `δ`, the merged summation
/// order and the degeneracy rule are all identical, every accumulation
/// below replays the exact floating-point operation sequence of the
/// single-arena drivers.
fn drive_sharded_overlap(
    parts: &[ShardPart<'_>],
    q: &Query,
    winner: (usize, usize),
    apply: impl FnMut(usize, usize, f64),
) -> FusionInfo {
    // (gid, part, local, δ) — sorted by gid below; ids are disjoint, so
    // the sort is a deterministic k-way merge into global arena order.
    let mut entries: Vec<(usize, usize, usize, f64)> = Vec::new();
    let mut buf: Vec<(usize, f64)> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        part.snapshot.overlap_set_into(q, &mut buf);
        for &(lk, d) in &buf {
            entries.push((part.ids[lk], pi, lk, d));
        }
    }
    entries.sort_unstable_by_key(|e| e.0);
    fuse_sharded_entries(&entries, winner, apply)
}

/// The fold half of the sharded fusion driver, over an already-merged,
/// gid-sorted entry list: sum the degrees in global arena order, decide
/// degeneracy with the shared rule, and apply either the normalized
/// weights or the winner fallback. Shared by the scalar driver above and
/// the batched driver ([`sharded_batch_drive`]) so the two replay one
/// floating-point operation sequence.
fn fuse_sharded_entries(
    entries: &[(usize, usize, usize, f64)],
    winner: (usize, usize),
    mut apply: impl FnMut(usize, usize, f64),
) -> FusionInfo {
    let total: f64 = entries.iter().map(|e| e.3).sum();
    if predict::fusion_degenerate(entries.len(), total) {
        let (wp, wl) = winner;
        apply(wp, wl, 1.0);
        FusionInfo {
            fused: false,
            mass: 0.0,
        }
    } else {
        for &(_, pi, lk, d) in entries {
            apply(pi, lk, d / total);
        }
        FusionInfo {
            fused: true,
            mass: total,
        }
    }
}

/// Q1 prediction and confidence fused **across shards** — bit-identical
/// to [`ServingSnapshot::predict_q1_with_confidence`] on the single
/// unpartitioned snapshot (see [`ShardPart`] for the invariants that make
/// this hold). `None` when every part is empty.
pub fn sharded_q1_with_confidence(parts: &[ShardPart<'_>], q: &Query) -> Option<(f64, Confidence)> {
    let (wp, wl, winner_sq) = sharded_winner(parts, q)?;
    let rho = parts[wp].snapshot.config().rho();
    let mut yhat = 0.0;
    let mut support_updates = 0.0;
    let info = drive_sharded_overlap(parts, q, (wp, wl), |pi, lk, w| {
        let arena = parts[pi].snapshot.arena();
        yhat += w * arena.eval(lk, &q.center, q.radius);
        support_updates += w * arena.updates(lk) as f64;
    });
    Some((
        yhat,
        confidence::combine(winner_sq, rho, support_updates, info),
    ))
}

/// Q2 list and confidence fused across shards — bit-identical to
/// [`ServingSnapshot::predict_q2_with_confidence`] on the unpartitioned
/// snapshot; list elements carry the **global** prototype id, so the list
/// is indistinguishable from the single-arena one. `None` when every part
/// is empty.
pub fn sharded_q2_with_confidence(
    parts: &[ShardPart<'_>],
    q: &Query,
) -> Option<(Vec<LocalModel>, Confidence)> {
    let (wp, wl, winner_sq) = sharded_winner(parts, q)?;
    let rho = parts[wp].snapshot.config().rho();
    let mut s = Vec::new();
    let mut support_updates = 0.0;
    let info = drive_sharded_overlap(parts, q, (wp, wl), |pi, lk, w| {
        let arena = parts[pi].snapshot.arena();
        let mut lm = predict::local_model_at(arena, lk, w);
        lm.prototype = parts[pi].ids[lk];
        s.push(lm);
        support_updates += w * arena.updates(lk) as f64;
    });
    Some((
        s,
        confidence::combine(winner_sq, rho, support_updates, info),
    ))
}

/// Shared driver of the sharded **batch** predictors: resolve the whole
/// batch once per part (one fused arena pass per shard, amortized over
/// the query block), then per query replay the scalar sharded path —
/// winner selection with the same strict-`<`/lowest-gid tie-break as
/// [`sharded_winner`], the same gid-sorted entry merge as the scalar
/// driver, and the shared [`fuse_sharded_entries`] fold. `out[i]` is
/// `None` exactly when the scalar call would return `None` (every part
/// empty).
fn sharded_batch_drive<T>(
    parts: &[ShardPart<'_>],
    queries: &[Query],
    per_query: impl FnMut(&Query, (usize, usize, f64), &[(usize, usize, usize, f64)]) -> T,
) -> Vec<Option<T>> {
    sharded_batch_drive_impl(parts, queries, None, per_query)
}

/// [`sharded_batch_drive`] with an optional two-phase pruned resolver:
/// when `counters` is `Some`, every part resolves through its snapshot's
/// capture-time [`BlockLayout`] (screening telemetry accumulated there)
/// instead of the unpruned arena scan. Both resolvers fill bit-identical
/// [`BatchResolution`]s, so the merge/fold below is shared verbatim.
fn sharded_batch_drive_impl<T>(
    parts: &[ShardPart<'_>],
    queries: &[Query],
    mut counters: Option<&mut ScreenCounters>,
    mut per_query: impl FnMut(&Query, (usize, usize, f64), &[(usize, usize, usize, f64)]) -> T,
) -> Vec<Option<T>> {
    if queries.is_empty() {
        return Vec::new();
    }
    SHARD_BATCH_SCRATCH.with(|scratch| {
        let mut s = scratch.borrow_mut();
        let (resolutions, merged) = &mut *s;
        while resolutions.len() < parts.len() {
            resolutions.push(BatchResolution::new());
        }
        for (pi, part) in parts.iter().enumerate() {
            debug_assert_eq!(part.ids.len(), part.snapshot.k(), "ids must map every slot");
            if part.snapshot.k() == 0 {
                continue;
            }
            match counters.as_deref_mut() {
                Some(c) => {
                    part.snapshot
                        .layout()
                        .resolve_batch_pruned(queries, &mut resolutions[pi], c);
                }
                None => {
                    part.snapshot
                        .arena()
                        .resolve_batch(queries, &mut resolutions[pi]);
                }
            }
        }
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut best: Option<(usize, usize, f64, usize)> = None;
                for (pi, part) in parts.iter().enumerate() {
                    if part.snapshot.k() == 0 {
                        continue;
                    }
                    let (lk, sq) = resolutions[pi].winner(i);
                    let gid = part.ids[lk];
                    let better = match best {
                        None => true,
                        Some((_, _, best_sq, best_gid)) => {
                            sq < best_sq || (sq == best_sq && gid < best_gid)
                        }
                    };
                    if better {
                        best = Some((pi, lk, sq, gid));
                    }
                }
                let (wp, wl, wsq, _) = best?;
                merged.clear();
                for (pi, part) in parts.iter().enumerate() {
                    if part.snapshot.k() == 0 {
                        continue;
                    }
                    for &(lk, d) in resolutions[pi].overlap(i) {
                        merged.push((part.ids[lk], pi, lk, d));
                    }
                }
                merged.sort_unstable_by_key(|e| e.0);
                Some(per_query(q, (wp, wl, wsq), merged))
            })
            .collect()
    })
}

/// Batched Q1 + confidence fused across shards: `out[i]` is bit-identical
/// to [`sharded_q1_with_confidence`] on `queries[i]` — and therefore to
/// the unsharded [`ServingSnapshot::predict_q1_with_confidence`] under
/// the [`ShardPart`] invariants. Queries must be dimension-checked by the
/// caller (the serve fabric does this up front).
pub fn sharded_q1_with_confidence_batch(
    parts: &[ShardPart<'_>],
    queries: &[Query],
) -> Vec<Option<(f64, Confidence)>> {
    sharded_batch_drive(parts, queries, |q, (wp, wl, wsq), entries| {
        let rho = parts[wp].snapshot.config().rho();
        let mut yhat = 0.0;
        let mut support_updates = 0.0;
        let info = fuse_sharded_entries(entries, (wp, wl), |pi, lk, w| {
            let arena = parts[pi].snapshot.arena();
            yhat += w * arena.eval(lk, &q.center, q.radius);
            support_updates += w * arena.updates(lk) as f64;
        });
        (yhat, confidence::combine(wsq, rho, support_updates, info))
    })
}

/// Batched Q2 + confidence fused across shards: `out[i]` is bit-identical
/// to [`sharded_q2_with_confidence`] on `queries[i]`, global prototype
/// ids included.
pub fn sharded_q2_with_confidence_batch(
    parts: &[ShardPart<'_>],
    queries: &[Query],
) -> Vec<Option<(Vec<LocalModel>, Confidence)>> {
    sharded_batch_drive(parts, queries, |_, (wp, wl, wsq), entries| {
        let rho = parts[wp].snapshot.config().rho();
        let mut s = Vec::new();
        let mut support_updates = 0.0;
        let info = fuse_sharded_entries(entries, (wp, wl), |pi, lk, w| {
            let arena = parts[pi].snapshot.arena();
            let mut lm = predict::local_model_at(arena, lk, w);
            lm.prototype = parts[pi].ids[lk];
            s.push(lm);
            support_updates += w * arena.updates(lk) as f64;
        });
        (s, confidence::combine(wsq, rho, support_updates, info))
    })
}

/// Two-phase pruned batched Q1 + confidence across shards: `out[i]` is
/// bit-identical to [`sharded_q1_with_confidence_batch`] on the same
/// parts — each part resolves through its capture-time [`BlockLayout`],
/// with screening telemetry from all parts accumulated into `counters`.
pub fn sharded_q1_with_confidence_batch_pruned(
    parts: &[ShardPart<'_>],
    queries: &[Query],
    counters: &mut ScreenCounters,
) -> Vec<Option<(f64, Confidence)>> {
    sharded_batch_drive_impl(
        parts,
        queries,
        Some(counters),
        |q, (wp, wl, wsq), entries| {
            let rho = parts[wp].snapshot.config().rho();
            let mut yhat = 0.0;
            let mut support_updates = 0.0;
            let info = fuse_sharded_entries(entries, (wp, wl), |pi, lk, w| {
                let arena = parts[pi].snapshot.arena();
                yhat += w * arena.eval(lk, &q.center, q.radius);
                support_updates += w * arena.updates(lk) as f64;
            });
            (yhat, confidence::combine(wsq, rho, support_updates, info))
        },
    )
}

/// Two-phase pruned batched Q2 + confidence across shards: `out[i]` is
/// bit-identical to [`sharded_q2_with_confidence_batch`] on the same
/// parts, global prototype ids included.
pub fn sharded_q2_with_confidence_batch_pruned(
    parts: &[ShardPart<'_>],
    queries: &[Query],
    counters: &mut ScreenCounters,
) -> Vec<Option<(Vec<LocalModel>, Confidence)>> {
    sharded_batch_drive_impl(
        parts,
        queries,
        Some(counters),
        |_, (wp, wl, wsq), entries| {
            let rho = parts[wp].snapshot.config().rho();
            let mut s = Vec::new();
            let mut support_updates = 0.0;
            let info = fuse_sharded_entries(entries, (wp, wl), |pi, lk, w| {
                let arena = parts[pi].snapshot.arena();
                let mut lm = predict::local_model_at(arena, lk, w);
                lm.prototype = parts[pi].ids[lk];
                s.push(lm);
                support_updates += w * arena.updates(lk) as f64;
            });
            (s, confidence::combine(wsq, rho, support_updates, info))
        },
    )
}

/// Two-phase pruned scalar Q1 + confidence across shards — bit-identical
/// to [`sharded_q1_with_confidence`] (screening telemetry in `counters`).
pub fn sharded_q1_with_confidence_pruned(
    parts: &[ShardPart<'_>],
    q: &Query,
    counters: &mut ScreenCounters,
) -> Option<(f64, Confidence)> {
    sharded_q1_with_confidence_batch_pruned(parts, std::slice::from_ref(q), counters)
        .pop()
        // INVARIANT: the batch driver returns exactly one entry per
        // query and we passed exactly one query.
        .expect("one query in, one answer out")
}

/// Two-phase pruned scalar Q2 + confidence across shards — bit-identical
/// to [`sharded_q2_with_confidence`] (screening telemetry in `counters`).
pub fn sharded_q2_with_confidence_pruned(
    parts: &[ShardPart<'_>],
    q: &Query,
    counters: &mut ScreenCounters,
) -> Option<(Vec<LocalModel>, Confidence)> {
    sharded_q2_with_confidence_batch_pruned(parts, std::slice::from_ref(q), counters)
        .pop()
        // INVARIANT: the batch driver returns exactly one entry per
        // query and we passed exactly one query.
        .expect("one query in, one answer out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn q(center: &[f64], r: f64) -> Query {
        Query::new_unchecked(center.to_vec(), r)
    }

    fn trained(seed: u64, steps: usize) -> LlmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
        cfg.gamma = 1e-6; // keep it plastic across the probe points
        let mut m = LlmModel::new(cfg).unwrap();
        for _ in 0..steps {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] - 2.0 * c[1];
            m.train_step(&Query::new_unchecked(c, rng.random_range(0.05..0.2)), y)
                .unwrap();
        }
        m
    }

    fn probe_grid() -> Vec<Query> {
        let mut probes = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                for theta in [0.05, 0.2, 0.6] {
                    probes.push(q(&[i as f64 * 0.5 - 0.5, j as f64 * 0.5 - 0.5], theta));
                }
            }
        }
        probes
    }

    #[test]
    fn snapshot_matches_model_bit_for_bit() {
        let m = trained(1, 4_000);
        let s = m.snapshot();
        assert_eq!(s.k(), m.k());
        assert_eq!(s.dim(), m.dim());
        assert_eq!(s.version(), m.steps());
        assert_eq!(s.is_frozen(), m.is_frozen());
        assert_eq!(s.prototypes(), m.prototypes());
        for probe in probe_grid() {
            assert_eq!(s.predict_q1(&probe), m.predict_q1(&probe));
            assert_eq!(s.predict_q2(&probe), m.predict_q2(&probe));
            assert_eq!(
                s.predict_value(&probe, &probe.center),
                m.predict_value(&probe, &probe.center)
            );
            assert_eq!(s.confidence(&probe), m.confidence(&probe));
            assert_eq!(
                s.predict_q1_with_confidence(&probe),
                m.predict_q1_with_confidence(&probe)
            );
            // The fused Q2 path decomposes into the two separate calls.
            let (list, conf) = s.predict_q2_with_confidence(&probe).unwrap();
            assert_eq!(list, s.predict_q2(&probe).unwrap());
            assert_eq!(conf, s.confidence(&probe).unwrap());
            assert_eq!(s.winner(&probe), m.winner(&probe));
        }
    }

    #[test]
    fn snapshot_is_isolated_from_further_training() {
        let mut m = trained(2, 1_000);
        let s = m.snapshot();
        let before: Vec<f64> = probe_grid()
            .iter()
            .map(|p| s.predict_q1(p).unwrap())
            .collect();
        // Keep training the source model well past the capture point.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] - 2.0 * c[1];
            m.train_step(&Query::new_unchecked(c, 0.1), y).unwrap();
        }
        let after: Vec<f64> = probe_grid()
            .iter()
            .map(|p| s.predict_q1(p).unwrap())
            .collect();
        assert_eq!(before, after, "snapshot must be immutable");
        assert!(m.steps() > s.version());
    }

    #[test]
    fn clone_shares_the_capture() {
        let m = trained(4, 500);
        let a = m.snapshot();
        let b = a.clone();
        assert!(a.same_capture(&b));
        assert!(!a.same_capture(&m.snapshot()));
    }

    #[test]
    fn to_model_round_trips_parameters() {
        let m = trained(5, 2_000);
        let s = m.snapshot();
        let back = s.to_model().unwrap();
        assert_eq!(back.prototypes(), m.prototypes());
        assert_eq!(back.steps(), m.steps());
        assert_eq!(back.is_frozen(), m.is_frozen());
        for probe in probe_grid() {
            assert_eq!(back.predict_q1(&probe), m.predict_q1(&probe));
        }
    }

    #[test]
    fn empty_snapshot_errors_like_an_empty_model() {
        let m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        let s = m.snapshot();
        assert!(matches!(
            s.predict_q1(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        assert!(matches!(
            s.confidence(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        let t = trained(6, 200).snapshot();
        assert!(matches!(
            t.predict_q1(&q(&[0.5], 0.1)),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            t.predict_value(&q(&[0.5, 0.5], 0.1), &[0.5]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    /// Split a model's prototypes round-robin (`gid % n`) into `n`
    /// per-shard snapshots, keeping each slot's global arena index.
    fn split_round_robin(m: &LlmModel, n: usize) -> Vec<(ServingSnapshot, Vec<usize>)> {
        let protos = m.prototypes();
        (0..n)
            .map(|shard| {
                let mut subset = Vec::new();
                let mut ids = Vec::new();
                for (gid, p) in protos.iter().enumerate() {
                    if gid % n == shard {
                        subset.push(p.clone());
                        ids.push(gid);
                    }
                }
                let part = LlmModel::from_parts_public(m.config().clone(), subset, m.steps(), true)
                    .unwrap();
                (part.snapshot(), ids)
            })
            .collect()
    }

    #[test]
    fn sharded_fusion_is_bit_identical_to_the_single_snapshot() {
        let m = trained(21, 4_000);
        assert!(m.k() >= 5, "need enough prototypes to shard: k={}", m.k());
        let full = m.snapshot();
        for n in [1usize, 2, 3, 5] {
            let split = split_round_robin(&m, n);
            let parts: Vec<ShardPart<'_>> = split
                .iter()
                .map(|(s, ids)| ShardPart { snapshot: s, ids })
                .collect();
            for probe in probe_grid() {
                let (fy, fc) = full.predict_q1_with_confidence(&probe).unwrap();
                let (y, c) = sharded_q1_with_confidence(&parts, &probe).unwrap();
                assert_eq!(y.to_bits(), fy.to_bits(), "q1 value drifted at n={n}");
                assert_eq!(c.score.to_bits(), fc.score.to_bits());
                assert_eq!(c, fc, "confidence drifted at n={n}");
                let (flist, fconf) = full.predict_q2_with_confidence(&probe).unwrap();
                let (list, conf) = sharded_q2_with_confidence(&parts, &probe).unwrap();
                assert_eq!(list, flist, "q2 list drifted at n={n}");
                assert_eq!(conf, fconf);
            }
        }
    }

    #[test]
    fn batch_predictors_are_bit_identical_to_scalar_calls() {
        let m = trained(31, 4_000);
        let s = m.snapshot();
        let probes = probe_grid();
        let xs: Vec<Vec<f64>> = probes.iter().map(|p| p.center.clone()).collect();
        let q1 = s.predict_q1_batch(&probes).unwrap();
        let q2 = s.predict_q2_batch(&probes).unwrap();
        let vals = s.predict_value_batch(&probes, &xs).unwrap();
        let confs = s.confidence_batch(&probes).unwrap();
        let q1c = s.predict_q1_with_confidence_batch(&probes).unwrap();
        let q2c = s.predict_q2_with_confidence_batch(&probes).unwrap();
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(q1[i].to_bits(), s.predict_q1(probe).unwrap().to_bits());
            assert_eq!(q2[i], s.predict_q2(probe).unwrap());
            assert_eq!(
                vals[i].to_bits(),
                s.predict_value(probe, &probe.center).unwrap().to_bits()
            );
            assert_eq!(confs[i], s.confidence(probe).unwrap());
            assert_eq!(q1c[i], s.predict_q1_with_confidence(probe).unwrap());
            assert_eq!(q2c[i], s.predict_q2_with_confidence(probe).unwrap());
        }
    }

    #[test]
    fn batch_predictor_edges_are_typed_not_panics() {
        let m = trained(32, 2_000);
        let s = m.snapshot();
        // Empty batch: empty result, no model checks.
        assert_eq!(s.predict_q1_batch(&[]).unwrap(), Vec::<f64>::new());
        let empty = LlmModel::new(ModelConfig::with_vigilance(2, 0.15))
            .unwrap()
            .snapshot();
        assert!(empty.predict_q1_batch(&[]).unwrap().is_empty());
        assert_eq!(
            empty.predict_q1_batch(&[q(&[0.5, 0.5], 0.1)]),
            Err(CoreError::EmptyModel)
        );
        // Wrong-dimension query anywhere in the batch: typed error.
        let batch = [q(&[0.5, 0.5], 0.1), q(&[0.5, 0.5, 0.5], 0.1)];
        assert_eq!(
            s.predict_q1_batch(&batch),
            Err(CoreError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        );
        assert_eq!(
            s.predict_q2_with_confidence_batch(&batch).unwrap_err(),
            CoreError::DimensionMismatch {
                expected: 2,
                actual: 3
            }
        );
        // Wrong-dimension probe point on the value path.
        assert_eq!(
            s.predict_value_batch(&[q(&[0.5, 0.5], 0.1)], &[vec![0.1]]),
            Err(CoreError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn sharded_batch_fusion_matches_scalar_sharded_calls() {
        let m = trained(33, 4_000);
        let probes = probe_grid();
        for n in [1usize, 2, 3, 5] {
            let split = split_round_robin(&m, n);
            let parts: Vec<ShardPart<'_>> = split
                .iter()
                .map(|(s, ids)| ShardPart { snapshot: s, ids })
                .collect();
            let q1 = sharded_q1_with_confidence_batch(&parts, &probes);
            let q2 = sharded_q2_with_confidence_batch(&parts, &probes);
            for (i, probe) in probes.iter().enumerate() {
                assert_eq!(q1[i], sharded_q1_with_confidence(&parts, probe), "n={n}");
                assert_eq!(q2[i], sharded_q2_with_confidence(&parts, probe), "n={n}");
            }
        }
        // Empty parts → per-query None; empty batch → empty vec.
        assert!(sharded_q1_with_confidence_batch(&[], &probes)
            .iter()
            .all(Option::is_none));
        assert!(sharded_q1_with_confidence_batch(&[], &[]).is_empty());
    }

    #[test]
    fn pruned_predictors_are_bit_identical_and_counted() {
        let m = trained(41, 4_000);
        let s = m.snapshot();
        let probes = probe_grid();
        let mut counters = ScreenCounters::default();
        let q1 = s
            .predict_q1_with_confidence_batch_pruned(&probes, &mut counters)
            .unwrap();
        let q2 = s
            .predict_q2_with_confidence_batch_pruned(&probes, &mut counters)
            .unwrap();
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(q1[i], s.predict_q1_with_confidence(probe).unwrap());
            assert_eq!(q2[i], s.predict_q2_with_confidence(probe).unwrap());
            let mut c = ScreenCounters::default();
            assert_eq!(
                s.predict_q1_with_confidence_pruned(probe, &mut c).unwrap(),
                q1[i]
            );
            assert!(c.blocks > 0, "scalar pruned call must be counted");
            assert_eq!(
                s.predict_q2_with_confidence_pruned(probe, &mut c).unwrap(),
                q2[i]
            );
        }
        // Two batch passes over every probe, all visits accounted for.
        assert_eq!(
            counters.blocks,
            2 * (probes.len() * s.layout().num_blocks()) as u64
        );
        assert_eq!(counters.skipped + counters.verified, counters.blocks);
        // Errors match the unpruned path.
        let mut c = ScreenCounters::default();
        assert!(s
            .predict_q1_with_confidence_batch_pruned(&[], &mut c)
            .unwrap()
            .is_empty());
        assert_eq!(
            s.predict_q1_with_confidence_pruned(&q(&[0.5], 0.1), &mut c),
            Err(CoreError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn pruned_sharded_fusion_matches_unpruned_sharded_calls() {
        let m = trained(42, 4_000);
        let probes = probe_grid();
        for n in [1usize, 2, 3, 5] {
            let split = split_round_robin(&m, n);
            let parts: Vec<ShardPart<'_>> = split
                .iter()
                .map(|(s, ids)| ShardPart { snapshot: s, ids })
                .collect();
            let mut counters = ScreenCounters::default();
            let q1 = sharded_q1_with_confidence_batch_pruned(&parts, &probes, &mut counters);
            let q2 = sharded_q2_with_confidence_batch_pruned(&parts, &probes, &mut counters);
            for (i, probe) in probes.iter().enumerate() {
                assert_eq!(q1[i], sharded_q1_with_confidence(&parts, probe), "n={n}");
                assert_eq!(q2[i], sharded_q2_with_confidence(&parts, probe), "n={n}");
                let mut c = ScreenCounters::default();
                assert_eq!(
                    sharded_q1_with_confidence_pruned(&parts, probe, &mut c),
                    q1[i]
                );
                assert_eq!(
                    sharded_q2_with_confidence_pruned(&parts, probe, &mut c),
                    q2[i]
                );
            }
            assert_eq!(counters.skipped + counters.verified, counters.blocks);
            assert!(counters.blocks > 0);
        }
        // Empty parts → per-query None, counters untouched.
        let mut c = ScreenCounters::default();
        assert!(
            sharded_q1_with_confidence_batch_pruned(&[], &probes, &mut c)
                .iter()
                .all(Option::is_none)
        );
        assert_eq!(c, ScreenCounters::default());
    }

    #[test]
    fn sharded_fusion_handles_empty_and_missing_parts() {
        // No parts at all, or only empty parts → None.
        assert!(sharded_q1_with_confidence(&[], &q(&[0.5, 0.5], 0.1)).is_none());
        let empty = LlmModel::new(ModelConfig::with_vigilance(2, 0.15))
            .unwrap()
            .snapshot();
        let parts = [ShardPart {
            snapshot: &empty,
            ids: &[],
        }];
        assert!(sharded_q1_with_confidence(&parts, &q(&[0.5, 0.5], 0.1)).is_none());
        assert!(sharded_q2_with_confidence(&parts, &q(&[0.5, 0.5], 0.1)).is_none());

        // A mix of an empty shard and a full one ≡ the full snapshot alone.
        let m = trained(22, 2_000);
        let full = m.snapshot();
        let all_ids: Vec<usize> = (0..m.k()).collect();
        let mixed = [
            ShardPart {
                snapshot: &empty,
                ids: &[],
            },
            ShardPart {
                snapshot: &full,
                ids: &all_ids,
            },
        ];
        for probe in probe_grid() {
            assert_eq!(
                sharded_q1_with_confidence(&mixed, &probe),
                Some(full.predict_q1_with_confidence(&probe).unwrap())
            );
        }
    }
}
