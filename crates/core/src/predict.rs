//! Query processing: Algorithm 2 (Q1), Algorithm 3 (Q2), Eq. 14 (data
//! values).
//!
//! Prediction never touches the underlying data — it is `O(dK)` over the
//! prototype set, which is the paper's efficiency/scalability claim
//! (Section V, "Convergence & Complexity"). On top of that bound, the
//! snapshot serving path can go *output-sensitive*: the two-phase pruned
//! resolvers ([`crate::snapshot::ServingSnapshot::predict_q1_with_confidence_pruned`]
//! and siblings) screen whole prototype blocks through
//! [`crate::arena::BlockLayout`]'s cached bounds before the exact `O(dK)`
//! kernels run over the survivors — bit-identical answers, with every
//! pruning decision counted into [`crate::arena::ScreenCounters`]. The
//! fusion drivers in this module are shared by both resolutions, so a
//! pruned and an unpruned answer can never disagree about the route.

use crate::arena::PrototypeArena;
use crate::error::CoreError;
use crate::model::LlmModel;
use crate::query::Query;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Reusable overlap-set buffer for the serving path. Prediction is
    /// `O(dK)` compute; with this scratch (and the slice-level overlap
    /// kernel) it is also allocation-free per query, so a serving thread
    /// never touches the allocator in steady state. Thread-local because a
    /// frozen model is served from `&self` by many threads at once.
    static OVERLAP_SCRATCH: RefCell<Vec<(usize, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Which path Algorithm 2's fusion actually took for one query — shared
/// between prediction and [`crate::confidence`] so a served answer and its
/// confidence can never disagree about the route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FusionInfo {
    /// `true` when the prediction fused `W(q)` with normalized `δ̃`
    /// weights; `false` when it fell back to the winner prototype (empty
    /// `W(q)`, or a non-empty set whose members are all exactly tangent —
    /// zero total weight either way).
    pub fused: bool,
    /// Raw overlap mass `Σ δ(q, w_k)` over the fused set; `0.0` on the
    /// fallback path.
    pub mass: f64,
}

/// The shared driver of all prediction algorithms **and** the confidence
/// assessment: resolve `W(q)` in the thread-local scratch and hand each
/// `(k, δ̃(q, w_k))` pair to `f` with weights normalized to 1. Zero total
/// weight means the fusion is undefined: either `W(q)` is empty, or every
/// member is exactly tangent to the query ball (`δ = 0` each — possible if
/// membership ever admits the `A(q, q')` boundary, and guarded here so the
/// weighted sum can never divide by zero). Both cases fall back to the
/// winner prototype with weight 1. Must be called on a non-empty arena.
pub(crate) fn for_each_overlap_weight(
    arena: &PrototypeArena,
    center: &[f64],
    radius: f64,
    f: impl FnMut(usize, f64),
) -> FusionInfo {
    drive_overlap_weights(arena, center, radius, None, f)
}

/// [`for_each_overlap_weight`] with the winner already in hand (the
/// confidence path needs the winner distance anyway — reusing it saves
/// the fallback branch a second full `O(dK)` scan). `winner` must be the
/// arena's own winner for this query; the scan is deterministic, so the
/// result is bit-identical to recomputing it.
pub(crate) fn for_each_overlap_weight_with_winner(
    arena: &PrototypeArena,
    center: &[f64],
    radius: f64,
    winner: usize,
    f: impl FnMut(usize, f64),
) -> FusionInfo {
    drive_overlap_weights(arena, center, radius, Some(winner), f)
}

/// Length/total form of the fallback decision, shared with the
/// cross-shard fusion driver ([`crate::snapshot`]'s sharded predictors),
/// which stores its merged overlap set in a different shape. One function
/// so the degeneracy rule cannot drift between the single-arena and
/// sharded paths.
#[inline]
pub(crate) fn fusion_degenerate(len: usize, total: f64) -> bool {
    len == 0 || total <= 0.0
}

/// Fold a *resolved* overlap set into normalized fusion weights: sum the
/// degrees, decide degeneracy ([`fusion_degenerate`] — empty set, or a
/// non-empty set whose members are all exactly tangent), and hand each
/// `(k, δ/total)` pair to `f` — or the winner with weight 1 on the
/// fallback path. `winner` is resolved lazily so the scalar no-winner
/// path still skips its extra `O(dK)` scan unless the fallback fires.
///
/// This is the single fusion fold shared by the scalar drivers (below,
/// via the thread-local scratch) and the batched predictors
/// ([`crate::snapshot`], over CSR slices of a
/// [`crate::arena::BatchResolution`]): one function, so the batch path
/// replays the exact floating-point operation sequence of the scalar
/// path — summation order, degeneracy rule, division — and stays
/// bit-identical to it.
pub(crate) fn fuse_weights_from_set(
    set: &[(usize, f64)],
    winner: impl FnOnce() -> usize,
    mut f: impl FnMut(usize, f64),
) -> FusionInfo {
    let total: f64 = set.iter().map(|(_, d)| d).sum();
    if fusion_degenerate(set.len(), total) {
        f(winner(), 1.0);
        FusionInfo {
            fused: false,
            mass: 0.0,
        }
    } else {
        for &(k, d) in set {
            f(k, d / total);
        }
        FusionInfo {
            fused: true,
            mass: total,
        }
    }
}

fn drive_overlap_weights(
    arena: &PrototypeArena,
    center: &[f64],
    radius: f64,
    winner: Option<usize>,
    f: impl FnMut(usize, f64),
) -> FusionInfo {
    OVERLAP_SCRATCH.with(|scratch| {
        let mut w = scratch.borrow_mut();
        arena.overlap_set_into(center, radius, &mut w);
        fuse_weights_from_set(
            &w,
            // INVARIANT: both pub(crate) entry points require a non-empty
            // arena (documented on `for_each_overlap_weight`), and
            // `PrototypeArena::winner` is `None` only when empty.
            || winner.unwrap_or_else(|| arena.winner(center, radius).expect("non-empty arena").0),
            f,
        )
    })
}

/// Algorithm 2 (Q1) over an arena. Must be called on a non-empty arena
/// with a dimension-checked query.
pub(crate) fn q1_over_arena(arena: &PrototypeArena, q: &Query) -> f64 {
    let mut yhat = 0.0;
    for_each_overlap_weight(arena, &q.center, q.radius, |k, w| {
        yhat += w * arena.eval(k, &q.center, q.radius);
    });
    yhat
}

/// Materialize the Theorem-3 local model of prototype `k` with fusion
/// weight `weight` — the one place the `S`-list element is built, shared
/// by the Q2 prediction and the fused Q2+confidence drivers so the list
/// construction cannot drift between them.
pub(crate) fn local_model_at(arena: &PrototypeArena, k: usize, weight: f64) -> LocalModel {
    let (intercept, slope) = arena.local_line(k);
    LocalModel {
        intercept,
        slope: slope.to_vec(),
        prototype: k,
        weight,
        center: arena.center(k).to_vec(),
        radius: arena.radius(k),
    }
}

/// Algorithm 3 (Q2) over an arena. Must be called on a non-empty arena
/// with a dimension-checked query.
pub(crate) fn q2_over_arena(arena: &PrototypeArena, q: &Query) -> Vec<LocalModel> {
    let mut s = Vec::new();
    for_each_overlap_weight(arena, &q.center, q.radius, |k, weight| {
        s.push(local_model_at(arena, k, weight));
    });
    s
}

/// Eq. 14 (data value) over an arena. Must be called on a non-empty arena
/// with dimension-checked query and probe point.
pub(crate) fn value_over_arena(arena: &PrototypeArena, q: &Query, x: &[f64]) -> f64 {
    let mut uhat = 0.0;
    for_each_overlap_weight(arena, &q.center, q.radius, |k, w| {
        uhat += w * arena.eval_at_own_radius(k, x);
    });
    uhat
}

/// One local linear model returned by a Q2 query (an element of the
/// paper's list `S`): `u ≈ intercept + slope · x` over the data subspace
/// `D_k` (Theorem 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalModel {
    /// `u`-intercept `y_k − b_{X,k} x_kᵀ`.
    pub intercept: f64,
    /// `u`-slope `b_{X,k}`.
    pub slope: Vec<f64>,
    /// Index of the prototype this model comes from.
    pub prototype: usize,
    /// Normalized overlap weight `δ̃(q, w_k)` (1.0 for the closest-prototype
    /// fallback) — diagnostic, not part of the paper's `S`.
    pub weight: f64,
    /// The subspace representative `x_k` (for region attribution).
    pub center: Vec<f64>,
    /// The subspace radius `θ_k`.
    pub radius: f64,
}

impl LocalModel {
    /// Evaluate `intercept + slope · x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.slope.len());
        let mut v = self.intercept;
        for (b, xi) in self.slope.iter().zip(x.iter()) {
            v += b * xi;
        }
        v
    }
}

impl LlmModel {
    fn check_query(&self, q: &Query) -> Result<(), CoreError> {
        if q.dim() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: q.dim(),
            });
        }
        if self.k() == 0 {
            return Err(CoreError::EmptyModel);
        }
        Ok(())
    }

    /// The overlap neighborhood `W(q)` (Eq. 10): indices and degrees of all
    /// prototypes with `δ(q, w_k) > 0`, appended to `out` (cleared first).
    /// A single batched pass over the arena's packed center block
    /// ([`crate::arena::PrototypeArena::overlap_set_into`]);
    /// allocation-free once the scratch buffers have warmed up, and
    /// bit-identical to the per-prototype reference scan
    /// ([`reference::overlap_set`]).
    pub fn overlap_set_into(&self, q: &Query, out: &mut Vec<(usize, f64)>) {
        self.arena().overlap_set_into(&q.center, q.radius, out);
    }

    /// The overlap neighborhood `W(q)` as a fresh vector (convenience over
    /// [`LlmModel::overlap_set_into`]).
    pub fn overlap_set(&self, q: &Query) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.overlap_set_into(q, &mut out);
        out
    }

    /// **Algorithm 2 — Q1 query processing.** Predict the mean value `ŷ`
    /// over `D(x, θ)` with zero data access.
    ///
    /// `ŷ = Σ_{w_k ∈ W(q)} δ̃(q, w_k) f_k(x, θ)` (Eq. 11/12); when `W(q)`
    /// is empty the closest prototype extrapolates: `ŷ = f_j(x, θ)`.
    ///
    /// Shared with [`crate::snapshot::ServingSnapshot::predict_q1`]
    /// (identical arena-level driver, bit-identical results).
    ///
    /// # Errors
    /// [`CoreError::EmptyModel`] on an untrained model,
    /// [`CoreError::DimensionMismatch`] on a wrong-dimension query.
    pub fn predict_q1(&self, q: &Query) -> Result<f64, CoreError> {
        self.check_query(q)?;
        Ok(q1_over_arena(self.arena(), q))
    }

    /// **Algorithm 3 — Q2 query processing.** Return the list `S` of local
    /// linear models of the data function `g` over `D(x, θ)`.
    ///
    /// Cases (Section V-B): overlap with one or more data subspaces →
    /// one `(intercept, slope)` per overlapping prototype (Theorem 3);
    /// no overlap → extrapolate from the closest prototype.
    ///
    /// # Errors
    /// Same as [`LlmModel::predict_q1`].
    pub fn predict_q2(&self, q: &Query) -> Result<Vec<LocalModel>, CoreError> {
        self.check_query(q)?;
        Ok(q2_over_arena(self.arena(), q))
    }

    /// **Eq. 14 — data-value prediction.** Predict `û ≈ g(x)` for a point
    /// `x` inside the exploration ball `q`:
    /// `û = Σ_{w_k ∈ W(q)} δ̃(q, w_k) f_k(x, θ_k)` — each LLM is evaluated
    /// at its *own* radius, collapsing it to the Theorem-3 line over `D_k`.
    ///
    /// # Errors
    /// Same as [`LlmModel::predict_q1`], plus a dimension check on `x`.
    pub fn predict_value(&self, q: &Query, x: &[f64]) -> Result<f64, CoreError> {
        self.check_query(q)?;
        if x.len() != self.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        Ok(value_over_arena(self.arena(), q, x))
    }

    /// Convenience: data-value prediction using a point-centered probe ball
    /// of radius `theta` (`q = [x, θ]`), the common exploration pattern in
    /// the paper's A2 experiments.
    pub fn predict_value_at(&self, x: &[f64], theta: f64) -> Result<f64, CoreError> {
        let q = Query::new_unchecked(x.to_vec(), theta);
        self.predict_value(&q, x)
    }
}

/// The retained **pre-arena serving path**: per-prototype scans over an
/// owned [`Prototype`](crate::prototype::Prototype) snapshot (each
/// prototype carrying its own heap allocations), exactly as the serving
/// loop ran before the struct-of-arrays refactor.
///
/// Two consumers keep it alive:
///
/// * the `arena_equivalence` proptests, which pin the arena path
///   bit-identical to this one (Q1, Q2, data value, winner, overlap set);
/// * `bench_report`'s `serving` section, which measures the arena's
///   throughput win against this baseline at K ∈ {64 … 4096}.
///
/// Functions take the snapshot from [`LlmModel::prototypes`] and return
/// `None` where the model methods would report
/// [`CoreError::EmptyModel`]; dimension checks are the caller's job. The
/// zero-total-weight fallback matches the arena path (winner with
/// weight 1).
pub mod reference {
    use super::{LocalModel, Query};
    use crate::overlap::overlap_degree_parts;
    use crate::prototype::Prototype;

    /// Per-prototype winner scan (index + squared joint distance).
    pub fn winner(protos: &[Prototype], q: &Query) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (k, p) in protos.iter().enumerate() {
            let d = p.sq_dist_to(q);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((k, d));
            }
        }
        best
    }

    /// Per-prototype overlap scan: `(k, δ)` for every `δ > 0`.
    pub fn overlap_set(protos: &[Prototype], q: &Query) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for (k, p) in protos.iter().enumerate() {
            let d = overlap_degree_parts(&q.center, q.radius, &p.center, p.radius);
            if d > 0.0 {
                out.push((k, d));
            }
        }
        out
    }

    fn for_each_overlap_weight(
        protos: &[Prototype],
        q: &Query,
        mut f: impl FnMut(usize, f64),
    ) -> Option<()> {
        let w = overlap_set(protos, q);
        let total: f64 = w.iter().map(|(_, d)| d).sum();
        if w.is_empty() || total <= 0.0 {
            let (j, _) = winner(protos, q)?;
            f(j, 1.0);
            return Some(());
        }
        for (k, d) in w {
            f(k, d / total);
        }
        Some(())
    }

    /// Algorithm 2 (Q1) over the snapshot; `None` on an empty snapshot.
    pub fn predict_q1(protos: &[Prototype], q: &Query) -> Option<f64> {
        let mut yhat = 0.0;
        for_each_overlap_weight(protos, q, |k, w| {
            yhat += w * protos[k].eval(&q.center, q.radius);
        })?;
        Some(yhat)
    }

    /// Algorithm 3 (Q2) over the snapshot; `None` on an empty snapshot.
    pub fn predict_q2(protos: &[Prototype], q: &Query) -> Option<Vec<LocalModel>> {
        let mut s = Vec::new();
        for_each_overlap_weight(protos, q, |k, weight| {
            let p = &protos[k];
            let (intercept, slope) = p.local_line();
            s.push(LocalModel {
                intercept,
                slope: slope.to_vec(),
                prototype: k,
                weight,
                center: p.center.clone(),
                radius: p.radius,
            });
        })?;
        Some(s)
    }

    /// Eq. 14 (data value) over the snapshot; `None` on an empty snapshot.
    pub fn predict_value(protos: &[Prototype], q: &Query, x: &[f64]) -> Option<f64> {
        let mut uhat = 0.0;
        for_each_overlap_weight(protos, q, |k, w| {
            uhat += w * protos[k].eval_at_own_radius(x);
        })?;
        Some(uhat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn q(center: &[f64], r: f64) -> Query {
        Query::new(center.to_vec(), r).unwrap()
    }

    #[test]
    fn fusion_fallback_decision_covers_the_non_empty_all_tangent_set() {
        // The non-empty zero-total-weight case cannot be reached end to
        // end today (`overlap_set_into` filters δ = 0 members), so the
        // decision is pinned here directly: a non-empty but all-tangent
        // set must take the winner fallback, never the weighted fusion.
        assert!(fusion_degenerate(0, 0.0), "empty set falls back");
        assert!(
            fusion_degenerate(2, 0.0),
            "non-empty all-tangent set falls back (zero total weight)"
        );
        assert!(!fusion_degenerate(1, 0.5), "positive mass fuses");
        assert!(!fusion_degenerate(2, 0.2 + 1e-300));
        // And the shared fold takes the winner-with-weight-1 path on it.
        let mut calls = Vec::new();
        let info = fuse_weights_from_set(&[(0, 0.0), (3, 0.0)], || 7, |k, w| calls.push((k, w)));
        assert_eq!(calls, vec![(7, 1.0)]);
        assert!(!info.fused);
        assert_eq!(info.mass, 0.0);
    }

    /// Model trained on a linear teacher y = 2 + x1 + x2 (mean over a ball
    /// centered at x of a linear function is the function at the center, so
    /// the teacher is exactly consistent with Q1 semantics).
    fn trained_linear_model(seed: u64) -> LlmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        // Finer vigilance than the paper default (a = 0.1 → more, smaller
        // subspaces: better locality for the accuracy assertions below) and
        // tight γ so slope coefficients get enough SGD updates before the
        // freeze (the convergence criterion is quantizer-driven; slopes
        // converge more slowly — see D-8).
        let mut cfg = ModelConfig::with_vigilance(2, 0.1);
        cfg.gamma = 1e-4;
        let mut m = LlmModel::new(cfg).unwrap();
        let stream = (0..60_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let r = rng.random_range(0.05..0.15);
            let y = 2.0 + c[0] + c[1];
            (Query::new_unchecked(c, r), y)
        });
        m.fit_stream(stream).unwrap();
        m
    }

    #[test]
    fn q1_prediction_matches_linear_teacher() {
        let m = trained_linear_model(11);
        for (cx, cy) in [(0.3, 0.3), (0.5, 0.7), (0.8, 0.2)] {
            let pred = m.predict_q1(&q(&[cx, cy], 0.1)).unwrap();
            let truth = 2.0 + cx + cy;
            assert!(
                (pred - truth).abs() < 0.08,
                "pred {pred} vs truth {truth} at ({cx},{cy})"
            );
        }
    }

    #[test]
    fn q2_local_lines_recover_linear_teacher() {
        let m = trained_linear_model(13);
        let s = m.predict_q2(&q(&[0.5, 0.5], 0.15)).unwrap();
        assert!(!s.is_empty());
        // Weights normalize.
        let wsum: f64 = s.iter().map(|lm| lm.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        // Each local line should be close to u = 2 + x1 + x2 near its
        // prototype: check prediction at the prototype center.
        for lm in &s {
            let truth = 2.0 + lm.center[0] + lm.center[1];
            let at_center = lm.predict(&lm.center);
            assert!(
                (at_center - truth).abs() < 0.12,
                "local line off: {at_center} vs {truth}"
            );
        }
    }

    #[test]
    fn q2_slopes_approximate_gradient() {
        let m = trained_linear_model(17);
        let s = m.predict_q2(&q(&[0.5, 0.5], 0.2)).unwrap();
        // Average slope across returned models ~ (1, 1).
        let n = s.len() as f64;
        let s1: f64 = s.iter().map(|lm| lm.slope[0]).sum::<f64>() / n;
        let s2: f64 = s.iter().map(|lm| lm.slope[1]).sum::<f64>() / n;
        assert!((s1 - 1.0).abs() < 0.35, "slope1 {s1}");
        assert!((s2 - 1.0).abs() < 0.35, "slope2 {s2}");
    }

    #[test]
    fn data_value_prediction_tracks_function() {
        let m = trained_linear_model(19);
        let probe = q(&[0.4, 0.6], 0.15);
        for (px, py) in [(0.35, 0.6), (0.45, 0.65), (0.4, 0.55)] {
            let pred = m.predict_value(&probe, &[px, py]).unwrap();
            let truth = 2.0 + px + py;
            assert!((pred - truth).abs() < 0.12, "pred {pred} truth {truth}");
        }
    }

    #[test]
    fn fallback_extrapolates_from_closest_prototype() {
        let m = trained_linear_model(23);
        // A far-away query ball that overlaps nothing.
        let far = q(&[5.0, 5.0], 0.01);
        assert!(m.overlap_set(&far).is_empty());
        let pred = m.predict_q1(&far).unwrap();
        assert!(pred.is_finite());
        let s = m.predict_q2(&far).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].weight, 1.0);
    }

    #[test]
    fn bigger_radius_overlaps_more_prototypes() {
        let m = trained_linear_model(29);
        let small = m.overlap_set(&q(&[0.5, 0.5], 0.05)).len();
        let large = m.overlap_set(&q(&[0.5, 0.5], 0.5)).len();
        assert!(large >= small);
        assert!(large >= 2, "large ball should overlap several prototypes");
    }

    #[test]
    fn s_list_size_tracks_overlap_count() {
        let m = trained_linear_model(31);
        let query = q(&[0.5, 0.5], 0.3);
        let w = m.overlap_set(&query).len();
        let s = m.predict_q2(&query).unwrap();
        assert_eq!(s.len(), w);
    }

    #[test]
    fn empty_model_errors() {
        let m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        assert!(matches!(
            m.predict_q1(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        assert!(matches!(
            m.predict_q2(&q(&[0.5, 0.5], 0.1)),
            Err(CoreError::EmptyModel)
        ));
        assert!(matches!(
            m.predict_value(&q(&[0.5, 0.5], 0.1), &[0.5, 0.5]),
            Err(CoreError::EmptyModel)
        ));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let m = trained_linear_model(37);
        assert!(matches!(
            m.predict_q1(&q(&[0.5], 0.1)),
            Err(CoreError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            m.predict_value(&q(&[0.5, 0.5], 0.1), &[0.1]),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn predictions_are_finite_for_arbitrary_queries() {
        let m = trained_linear_model(41);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(-10.0..10.0)).collect();
            let r = rng.random_range(1e-6..10.0);
            let query = Query::new_unchecked(c, r);
            assert!(m.predict_q1(&query).unwrap().is_finite());
            for lm in m.predict_q2(&query).unwrap() {
                assert!(lm.predict(&query.center).is_finite());
            }
        }
    }

    #[test]
    fn overlap_set_into_reuses_buffer_and_matches_allocating_api() {
        let m = trained_linear_model(47);
        let mut buf = vec![(99usize, 0.0)];
        let query = q(&[0.5, 0.5], 0.2);
        m.overlap_set_into(&query, &mut buf);
        assert_eq!(buf, m.overlap_set(&query));
        // A second query through the same buffer clears the first result.
        let far = q(&[5.0, 5.0], 0.01);
        m.overlap_set_into(&far, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn tangent_only_overlap_falls_back_to_winner() {
        // Regression: a query ball exactly tangent to *every* prototype
        // ball has A(q, w_k) true but δ(q, w_k) = 0 for all k — the fusion
        // carries zero total weight and must fall back to the winner
        // prototype (never divide by zero into a NaN prediction).
        let mut cfg = ModelConfig::paper_defaults(2);
        cfg.vigilance_override = Some(1e-9);
        let mut m = LlmModel::new(cfg).unwrap();
        // Spawn prototypes at exactly (0,0) and (2,0) with radius 0.5,
        // then revisit each once so the intercepts are non-zero.
        for _ in 0..2 {
            m.train_step(&q(&[0.0, 0.0], 0.5), 1.0).unwrap();
            m.train_step(&q(&[2.0, 0.0], 0.5), 5.0).unwrap();
        }
        assert_eq!(m.k(), 2);
        // Tangent to both: center distance 1.0 == 0.5 + 0.5 exactly.
        let tangent = q(&[1.0, 0.0], 0.5);
        assert!(m.overlap_set(&tangent).is_empty());
        let (j, _) = m.winner(&tangent).unwrap();
        let pred = m.predict_q1(&tangent).unwrap();
        assert!(pred.is_finite(), "tangent fusion produced {pred}");
        assert_eq!(pred, m.arena().eval(j, &tangent.center, tangent.radius));
        let s = m.predict_q2(&tangent).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].weight, 1.0);
        assert_eq!(s[0].prototype, j);
        // The retained reference path takes the same fallback.
        let snapshot = m.prototypes();
        assert_eq!(pred, reference::predict_q1(&snapshot, &tangent).unwrap());
        let u = m.predict_value(&tangent, &[1.0, 0.0]).unwrap();
        assert!(u.is_finite());
        assert_eq!(
            u,
            reference::predict_value(&snapshot, &tangent, &[1.0, 0.0]).unwrap()
        );
    }

    #[test]
    fn predict_value_at_equals_explicit_probe() {
        let m = trained_linear_model(43);
        let x = [0.3, 0.7];
        let a = m.predict_value_at(&x, 0.1).unwrap();
        let b = m
            .predict_value(&Query::new_unchecked(x.to_vec(), 0.1), &x)
            .unwrap();
        assert_eq!(a, b);
    }
}
