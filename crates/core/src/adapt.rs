//! Extensions E-2 / E-3 — adaptation to data-space updates and codebook
//! compaction (the paper's conclusion lists "adaptations to data space
//! updates" as future work).
//!
//! * **Drift adaptation**: unfreeze the model and keep training with a
//!   constant-floor learning rate so prototypes track a moving target
//!   ([`enable_drift_tracking`]).
//! * **Prototype merging**: after vigilance-driven growth, prototypes can
//!   end up closer than the quantization warrants (queries arrived in an
//!   unlucky order). [`merge_close_prototypes`] fuses pairs within a
//!   distance threshold, weighting by update counts.
//! * **Pruning**: prototypes that won almost no queries carry noisy,
//!   under-trained LLMs; [`prune_rare_prototypes`] drops them.

use crate::model::LlmModel;
use crate::schedule::LearningSchedule;
use regq_linalg::vector;

/// Unfreeze and switch to a constant learning rate (plasticity floor) so
/// continued training tracks non-stationary data.
///
/// # Panics
/// Panics if `eta` is outside `(0, 1)`.
pub fn enable_drift_tracking(model: &mut LlmModel, eta: f64) {
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1)");
    model.unfreeze();
    // Rebuild the model config in place via prototype-preserving surgery:
    // the schedule lives in the config, which is immutable by design, so we
    // go through the sanctioned mutation point.
    set_schedule(model, LearningSchedule::Constant(eta));
}

/// Replace the learning schedule (sanctioned config mutation used by the
/// drift extension and the schedule ablation bench).
pub fn set_schedule(model: &mut LlmModel, schedule: LearningSchedule) {
    let mut cfg = model.config().clone();
    cfg.schedule = schedule;
    // Validation cannot fail here unless the schedule itself is invalid.
    cfg.schedule
        .validate()
        .expect("schedule validated by caller");
    *model = LlmModel::from_parts_public(cfg, model.prototypes().to_vec(), model.steps(), false)
        .expect("existing model parts are consistent");
}

/// Merge prototype pairs whose joint query-space distance is below
/// `min_dist`. The survivor is the member with more updates; its parameters
/// become the update-count-weighted average of the pair. Returns the number
/// of merges performed.
pub fn merge_close_prototypes(model: &mut LlmModel, min_dist: f64) -> usize {
    let mut merged = 0usize;
    loop {
        let arena = model.arena();
        let k = arena.len();
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..k {
            for j in (i + 1)..k {
                let dr = arena.radius(i) - arena.radius(j);
                let d = (vector::sq_dist(arena.center(i), arena.center(j)) + dr * dr).sqrt();
                if d < min_dist && best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let arena = model.arena_mut();
        // Weighted average into i, remove j (i < j so removal is safe).
        let pj = arena.view(j).to_prototype();
        let (wi, wj) = ((arena.updates(i).max(1)) as f64, (pj.updates.max(1)) as f64);
        let total = wi + wj;
        let pi = arena.view_mut(i);
        for (ci, cj) in pi.center.iter_mut().zip(pj.center.iter()) {
            *ci = (*ci * wi + cj * wj) / total;
        }
        *pi.radius = (*pi.radius * wi + pj.radius * wj) / total;
        *pi.y = (*pi.y * wi + pj.y * wj) / total;
        for (bi, bj) in pi.b_x.iter_mut().zip(pj.b_x.iter()) {
            *bi = (*bi * wi + bj * wj) / total;
        }
        *pi.b_theta = (*pi.b_theta * wi + pj.b_theta * wj) / total;
        *pi.updates += pj.updates;
        arena.remove(j);
        merged += 1;
    }
    merged
}

/// Drop prototypes with fewer than `min_updates` SGD updates, keeping at
/// least one prototype. Returns the number pruned.
pub fn prune_rare_prototypes(model: &mut LlmModel, min_updates: u64) -> usize {
    let arena = model.arena_mut();
    if arena.len() <= 1 {
        return 0;
    }
    let before = arena.len();
    // Keep the best-trained prototype unconditionally so the model never
    // empties.
    let max_updates = arena.update_counts().iter().max().copied().unwrap_or(0);
    let mut kept_one = false;
    arena.retain(|p| {
        let keep = p.updates >= min_updates || (!kept_one && p.updates == max_updates);
        kept_one |= keep;
        keep
    });
    if arena.is_empty() {
        unreachable!("retain keeps at least one prototype");
    }
    before - arena.len()
}

impl LlmModel {
    /// Assemble a model from explicit parts: configuration, prototype
    /// set, consumed-step count and frozen flag. Used by `adapt` and
    /// `persist` internally, and by the serving layer's shard fabric to
    /// build per-shard models from prototype subsets.
    ///
    /// # Errors
    /// [`crate::error::CoreError::InvalidConfig`] /
    /// [`crate::error::CoreError::DimensionMismatch`] on inconsistent
    /// parts.
    pub fn from_parts_public(
        config: crate::config::ModelConfig,
        prototypes: Vec<crate::prototype::Prototype>,
        steps: u64,
        frozen: bool,
    ) -> Result<Self, crate::error::CoreError> {
        Self::from_parts(config, prototypes, steps, frozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::query::Query;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained(seed: u64, a: f64) -> LlmModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = ModelConfig::with_vigilance(2, a);
        cfg.gamma = 1e-4;
        let mut m = LlmModel::new(cfg).unwrap();
        let stream = (0..20_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] * 2.0 - c[1];
            (Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
        });
        m.fit_stream(stream).unwrap();
        m
    }

    #[test]
    fn merge_reduces_k_and_preserves_accuracy_roughly() {
        // Deterministic setup: two near-duplicate prototypes plus one far
        // away. Merging at threshold 0.05 must fuse exactly the close pair
        // and leave predictions essentially unchanged (the duplicates carry
        // near-identical coefficients).
        use crate::prototype::Prototype;
        let mk = |cx: f64, y: f64, updates: u64| Prototype {
            center: vec![cx, 0.5],
            radius: 0.1,
            y,
            b_x: vec![1.0, 1.0],
            b_theta: 0.0,
            updates,
        };
        let mut m = LlmModel::from_parts_public(
            ModelConfig::paper_defaults(2),
            vec![mk(0.30, 2.0, 10), mk(0.31, 2.02, 30), mk(0.90, 5.0, 20)],
            60,
            true,
        )
        .unwrap();
        let q = Query::new_unchecked(vec![0.3, 0.5], 0.1);
        let before = m.predict_q1(&q).unwrap();
        let merged = merge_close_prototypes(&mut m, 0.05);
        assert_eq!(merged, 1);
        assert_eq!(m.k(), 2);
        // Survivor is the update-weighted average: center x ≈ 0.3075.
        let survivor = &m.prototypes()[0];
        assert!((survivor.center[0] - (0.30 * 10.0 + 0.31 * 30.0) / 40.0).abs() < 1e-12);
        assert_eq!(survivor.updates, 40);
        let after = m.predict_q1(&q).unwrap();
        assert!(
            (before - after).abs() < 0.05,
            "merge distorted predictions: {before} vs {after}"
        );
    }

    #[test]
    fn merge_with_zero_threshold_is_noop() {
        let mut m = trained(5, 0.25);
        let k0 = m.k();
        assert_eq!(merge_close_prototypes(&mut m, 0.0), 0);
        assert_eq!(m.k(), k0);
    }

    #[test]
    fn prune_drops_under_trained_prototypes() {
        let mut m = trained(7, 0.05);
        let k0 = m.k();
        let rare = m.prototypes().iter().filter(|p| p.updates < 3).count();
        let pruned = prune_rare_prototypes(&mut m, 3);
        assert!(pruned <= rare);
        assert_eq!(m.k(), k0 - pruned);
        assert!(m.k() >= 1);
    }

    #[test]
    fn prune_never_empties_model() {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(1)).unwrap();
        m.train_step(&Query::new_unchecked(vec![0.5], 0.1), 1.0)
            .unwrap();
        let pruned = prune_rare_prototypes(&mut m, 1_000_000);
        assert_eq!(pruned, 0);
        assert_eq!(m.k(), 1);
    }

    #[test]
    fn drift_tracking_follows_moving_teacher() {
        let mut m = trained(9, 0.25);
        assert!(m.is_frozen());
        let probe = Query::new_unchecked(vec![0.5, 0.5], 0.1);
        let before = m.predict_q1(&probe).unwrap();
        // Teacher jumps: y' = y + 5. Without adaptation the model keeps
        // predicting the old level.
        enable_drift_tracking(&mut m, 0.2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = c[0] * 2.0 - c[1] + 5.0;
            m.train_step(&Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
                .unwrap();
        }
        let after = m.predict_q1(&probe).unwrap();
        assert!(
            (after - (before + 5.0)).abs() < 0.5,
            "did not track drift: before {before}, after {after}"
        );
    }

    #[test]
    fn set_schedule_preserves_prototypes() {
        let mut m = trained(13, 0.25);
        let protos = m.prototypes().to_vec();
        set_schedule(&mut m, LearningSchedule::HyperbolicGlobal);
        assert_eq!(m.prototypes(), &protos[..]);
        assert_eq!(m.config().schedule, LearningSchedule::HyperbolicGlobal);
    }
}
