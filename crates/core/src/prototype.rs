//! The owned prototype exchange form: `w_k = [x_k, θ_k]` plus its LLM
//! coefficients `(y_k, b_{X,k}, b_{Θ,k})` — the parameter triplet `α_k`
//! of Eq. (6).
//!
//! Since the struct-of-arrays refactor, the model's *storage* is the
//! packed [`crate::arena::PrototypeArena`]; an owned [`Prototype`] is
//! what crosses API edges (persistence, codebook surgery, snapshots for
//! the retained reference serving path) and what
//! [`LlmModel::prototypes`](crate::model::LlmModel::prototypes)
//! materializes on demand. The serving hot path never touches this type —
//! it runs on the borrowed views [`crate::arena::PrototypeRef`] /
//! [`crate::arena::PrototypeRefMut`].

use crate::query::Query;
use serde::{Deserialize, Serialize};

/// One query-space prototype with its Local Linear Mapping (owned
/// exchange form; see the module docs for its relation to the arena).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prototype {
    /// Prototype center `x_k` (the `E[x]` component of `w_k`).
    pub center: Vec<f64>,
    /// Prototype radius `θ_k` (the `E[θ]` component of `w_k`).
    pub radius: f64,
    /// Local intercept `y_k ≈ E[y]` over the query subspace `Q_k`.
    pub y: f64,
    /// Local slope over the input coordinates, `b_{X,k} ∈ R^d`.
    pub b_x: Vec<f64>,
    /// Local slope over the radius coordinate, `b_{Θ,k}`.
    pub b_theta: f64,
    /// Number of SGD updates this prototype has received (drives the
    /// per-prototype learning rate and the prune heuristic).
    pub updates: u64,
}

impl Prototype {
    /// Spawn a prototype from a query with zero-initialized coefficients
    /// (Algorithm 1 initialization / design decision D-4).
    ///
    /// `updates` starts at 1: creation *is* the first observation, so the
    /// next hyperbolic-schedule update uses `η = 1/2` and the prototype
    /// becomes the running average of the queries it wins (rather than
    /// fully forgetting its spawn position at `η = 1`).
    pub fn from_query(q: &Query) -> Self {
        Prototype {
            center: q.center.clone(),
            radius: q.radius,
            y: 0.0,
            b_x: vec![0.0; q.dim()],
            b_theta: 0.0,
            updates: 1,
        }
    }

    /// Input dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Evaluate the LLM `f_k(x, θ)` (Eq. 5/12):
    /// `y_k + b_{X,k}(x − x_k)ᵀ + b_{Θ,k}(θ − θ_k)`.
    #[inline]
    pub fn eval(&self, x: &[f64], theta: f64) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let mut v = self.y + self.b_theta * (theta - self.radius);
        for ((bi, xi), ci) in self.b_x.iter().zip(x.iter()).zip(self.center.iter()) {
            v += bi * (xi - ci);
        }
        v
    }

    /// Evaluate the LLM at the prototype's own radius, `f_k(x, θ_k)` —
    /// the data-function approximation of Theorem 3 / Eq. (13).
    #[inline]
    pub fn eval_at_own_radius(&self, x: &[f64]) -> f64 {
        self.eval(x, self.radius)
    }

    /// The local linear model of the *data* function over `D_k`
    /// (Theorem 3): returns `(intercept, slope)` with
    /// `intercept = y_k − b_{X,k}·x_kᵀ` and `slope = b_{X,k}`.
    pub fn local_line(&self) -> (f64, &[f64]) {
        let mut intercept = self.y;
        for (bi, ci) in self.b_x.iter().zip(self.center.iter()) {
            intercept -= bi * ci;
        }
        (intercept, &self.b_x)
    }

    /// View of the prototype as a query vector (for overlap computations).
    pub fn as_query(&self) -> Query {
        Query::new_unchecked(self.center.clone(), self.radius)
    }

    /// Squared joint `L2` distance from a query (Definition 5).
    #[inline]
    pub fn sq_dist_to(&self, q: &Query) -> f64 {
        q.sq_dist_parts(&self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> Prototype {
        Prototype {
            center: vec![1.0, 2.0],
            radius: 0.5,
            y: 10.0,
            b_x: vec![2.0, -1.0],
            b_theta: 4.0,
            updates: 7,
        }
    }

    #[test]
    fn from_query_zero_initializes() {
        let q = Query::new(vec![0.3, 0.4], 0.2).unwrap();
        let p = Prototype::from_query(&q);
        assert_eq!(p.center, vec![0.3, 0.4]);
        assert_eq!(p.radius, 0.2);
        assert_eq!(p.y, 0.0);
        assert_eq!(p.b_x, vec![0.0, 0.0]);
        assert_eq!(p.b_theta, 0.0);
        assert_eq!(p.updates, 1);
    }

    #[test]
    fn eval_matches_equation_5() {
        let p = proto();
        // f(x, θ) = 10 + 2(x1-1) - 1(x2-2) + 4(θ-0.5)
        let v = p.eval(&[2.0, 1.0], 1.0);
        assert!((v - (10.0 + 2.0 + 1.0 + 2.0)).abs() < 1e-12);
        // At the prototype itself: f = y_k.
        assert_eq!(p.eval(&[1.0, 2.0], 0.5), 10.0);
    }

    #[test]
    fn eval_at_own_radius_drops_theta_term() {
        let p = proto();
        assert_eq!(p.eval_at_own_radius(&[1.0, 2.0]), 10.0);
        assert_eq!(p.eval_at_own_radius(&[2.0, 2.0]), p.eval(&[2.0, 2.0], 0.5));
    }

    #[test]
    fn local_line_matches_theorem_3() {
        let p = proto();
        let (intercept, slope) = p.local_line();
        // intercept = 10 - (2*1 + (-1)*2) = 10.
        assert_eq!(intercept, 10.0);
        assert_eq!(slope, &[2.0, -1.0]);
        // The line and the LLM-at-own-radius agree everywhere.
        let x = [0.7, -1.3];
        let line_val = intercept + slope[0] * x[0] + slope[1] * x[1];
        assert!((line_val - p.eval_at_own_radius(&x)).abs() < 1e-12);
    }

    #[test]
    fn as_query_round_trips() {
        let p = proto();
        let q = p.as_query();
        assert_eq!(q.center, p.center);
        assert_eq!(q.radius, p.radius);
        assert_eq!(p.sq_dist_to(&q), 0.0);
    }
}
