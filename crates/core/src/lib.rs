//! # regq-core
//!
//! The paper's primary contribution: a **query-driven statistical learning
//! model** that answers mean-value (Q1) and linear-regression (Q2) queries
//! over data subspaces *without accessing the data*, after training on
//! previously executed `(query, answer)` pairs.
//!
//! ## Model in one paragraph
//!
//! A query `q = [x, θ]` (center + radius, Definition 4) lives in the query
//! space `Q ⊂ R^{d+1}`. A conditionally-growing adaptive vector quantizer
//! partitions `Q` into `K` subspaces with prototypes `w_k = [x_k, θ_k]`;
//! `K` is *not* fixed in advance but grows whenever an incoming query is
//! farther than the vigilance `ρ = a(√d + 1)` from every prototype
//! (Section IV). Each prototype carries a **Local Linear Mapping**
//! `f_k(x, θ) = y_k + b_{X,k}(x − x_k)ᵀ + b_{Θ,k}(θ − θ_k)` (Eq. 5) whose
//! coefficients are learned by stochastic gradient descent on the expected
//! prediction error (Theorem 4). Training (Algorithm 1) stops when the
//! aggregate parameter displacement `Γ = max(Γ_J, Γ_H)` drops below `γ`.
//!
//! After training:
//!
//! * **Q1** (Algorithm 2): `ŷ = Σ_{w_k ∈ W(q)} δ̃(q,w_k) · f_k(x, θ)` over
//!   the overlap neighborhood `W(q)`, falling back to the closest prototype
//!   when nothing overlaps;
//! * **Q2** (Algorithm 3): the list `S` of local linear models
//!   `(y_k − b_{X,k}x_kᵀ, b_{X,k})` — Theorem 3 — one per overlapping data
//!   subspace;
//! * **data values** (Eq. 14): `û = Σ δ̃(q,w_k) · f_k(x, θ_k)`.
//!
//! All three run in `O(dK)` with **zero data access** — the paper's
//! scalability claim.
//!
//! ## Module map
//!
//! * [`query`] — the query vector type and joint `L2` similarity
//!   (Definition 5).
//! * [`overlap`] — overlap predicate and degree `δ` (Eq. 9).
//! * [`prototype`] — the owned prototype exchange form (Theorem 3 views).
//! * [`arena`] — struct-of-arrays prototype storage + batched
//!   winner/overlap scans (the serving-path data layout).
//! * [`schedule`] — SGD learning-rate schedules (§II-B).
//! * [`config`] — vigilance/γ/schedule configuration.
//! * [`model`] — the [`LlmModel`]: Algorithm 1 training.
//! * [`predict`] — Algorithms 2 & 3 and Eq. 14 prediction.
//! * [`metrics`] — RMSE / FVU / CoD used by the paper's §VI metrics.
//! * [`moments`] — extension E-1: second-moment head → variance prediction.
//! * [`adapt`] — extension E-2/E-3: drift adaptation, merge & prune.
//! * [`confidence`] — desideratum D2: when to trust a served answer.
//! * [`snapshot`] — the immutable, publishable serving half of the
//!   train/serve split.
//! * [`persist`] — versioned text persistence (plus `serde` derives).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod adapt;
pub mod arena;
pub mod confidence;
pub mod config;
pub mod error;
pub mod metrics;
pub mod model;
pub mod moments;
pub mod overlap;
pub mod persist;
pub mod predict;
pub mod prototype;
pub mod query;
pub mod schedule;
pub mod snapshot;

pub use arena::{
    BatchResolution, BlockLayout, PrototypeArena, PrototypeRef, PrototypeRefMut, ScreenCounters,
};
pub use confidence::Confidence;
pub use config::ModelConfig;
pub use error::CoreError;
pub use model::{LlmModel, StepOutcome, TrainReport};
pub use moments::MomentsModel;
pub use overlap::{overlap_degree, overlap_degree_parts, overlaps};
pub use predict::LocalModel;
pub use prototype::Prototype;
pub use query::Query;
pub use schedule::LearningSchedule;
pub use snapshot::{
    sharded_q1_with_confidence, sharded_q1_with_confidence_batch,
    sharded_q1_with_confidence_batch_pruned, sharded_q1_with_confidence_pruned,
    sharded_q2_with_confidence, sharded_q2_with_confidence_batch,
    sharded_q2_with_confidence_batch_pruned, sharded_q2_with_confidence_pruned, ServingSnapshot,
    ShardPart,
};
