//! The acceptance gate for the struct-of-arrays serving refactor: the
//! arena path (batched winner/overlap kernels over packed blocks) must be
//! **bit-identical** — not merely close — to the retained per-prototype
//! reference path (`regq_core::predict::reference`) on every serving
//! primitive, across several independently trained models.
//!
//! Bit-identity holds because the batched kernels perform exactly the
//! additions of the scalar kernels, per row, in the same order; these
//! properties pin that contract so future SIMD work can't silently bend
//! the serving semantics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regq_core::predict::reference;
use regq_core::{LlmModel, ModelConfig, Prototype, Query};
use std::sync::OnceLock;

/// Three differently shaped trained models (dimension, vigilance,
/// schedule, teacher all vary) plus their owned prototype snapshots for
/// the reference path.
fn trained_models() -> &'static Vec<(LlmModel, Vec<Prototype>)> {
    static MODELS: OnceLock<Vec<(LlmModel, Vec<Prototype>)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut out = Vec::new();

        // 1-d, paper defaults, smooth nonlinear teacher.
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = LlmModel::new(ModelConfig::paper_defaults(1)).unwrap();
        m.fit_stream((0..15_000).map(|_| {
            let x = rng.random_range(0.0..1.0);
            let y = (3.0 * x).sin() + 0.5 * x;
            (
                Query::new_unchecked(vec![x], rng.random_range(0.05..0.2)),
                y,
            )
        }))
        .unwrap();
        out.push(m);

        // 2-d, finer vigilance, linear teacher (many prototypes).
        let mut rng = StdRng::seed_from_u64(13);
        let mut cfg = ModelConfig::with_vigilance(2, 0.1);
        cfg.gamma = 1e-4;
        let mut m = LlmModel::new(cfg).unwrap();
        m.fit_stream((0..25_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = 2.0 + c[0] - 0.5 * c[1];
            (Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
        }))
        .unwrap();
        out.push(m);

        // 3-d, global schedule, quadratic teacher.
        let mut rng = StdRng::seed_from_u64(17);
        let mut cfg = ModelConfig::paper_defaults(3);
        cfg.schedule = regq_core::LearningSchedule::HyperbolicGlobal;
        let mut m = LlmModel::new(cfg).unwrap();
        m.fit_stream((0..20_000).map(|_| {
            let c: Vec<f64> = (0..3).map(|_| rng.random_range(-1.0..1.0)).collect();
            let y = c[0] * c[0] + c[1] - c[2];
            (Query::new_unchecked(c, rng.random_range(0.05..0.3)), y)
        }))
        .unwrap();
        out.push(m);

        out.into_iter()
            .map(|m| {
                let snapshot = m.prototypes();
                (m, snapshot)
            })
            .collect()
    })
}

#[test]
fn fixture_spans_three_trained_models() {
    let models = trained_models();
    assert_eq!(models.len(), 3);
    for (m, snapshot) in models {
        assert!(m.k() > 1, "trained model should have grown a codebook");
        assert_eq!(m.k(), snapshot.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Winner search: same index, same squared joint distance, bit for bit.
    #[test]
    fn winner_is_bit_identical(
        coords in prop::collection::vec(-2.0..3.0f64, 3),
        radius in 0.01..1.5f64,
    ) {
        for (m, snapshot) in trained_models() {
            let q = Query::new_unchecked(coords[..m.dim()].to_vec(), radius);
            prop_assert_eq!(m.winner(&q), reference::winner(snapshot, &q));
        }
    }

    /// Overlap neighborhood `W(q)`: same members, same degrees, same order.
    #[test]
    fn overlap_set_is_bit_identical(
        coords in prop::collection::vec(-2.0..3.0f64, 3),
        radius in 0.01..1.5f64,
    ) {
        for (m, snapshot) in trained_models() {
            let q = Query::new_unchecked(coords[..m.dim()].to_vec(), radius);
            prop_assert_eq!(m.overlap_set(&q), reference::overlap_set(snapshot, &q));
        }
    }

    /// Q1, Q2 and data-value predictions are bit-identical across the two
    /// serving paths on every trained model.
    #[test]
    fn predictions_are_bit_identical(
        coords in prop::collection::vec(-2.0..3.0f64, 3),
        radius in 0.01..1.5f64,
        x in prop::collection::vec(-1.5..2.5f64, 3),
    ) {
        for (m, snapshot) in trained_models() {
            let d = m.dim();
            let q = Query::new_unchecked(coords[..d].to_vec(), radius);
            prop_assert_eq!(
                m.predict_q1(&q).unwrap(),
                reference::predict_q1(snapshot, &q).unwrap()
            );
            prop_assert_eq!(
                m.predict_q2(&q).unwrap(),
                reference::predict_q2(snapshot, &q).unwrap()
            );
            prop_assert_eq!(
                m.predict_value(&q, &x[..d]).unwrap(),
                reference::predict_value(snapshot, &q, &x[..d]).unwrap()
            );
        }
    }
}
