//! The acceptance gate for the two-phase pruned serving path.
//!
//! # Equivalence contract
//!
//! Pruned resolution ([`regq_core::BlockLayout::resolve_batch_pruned`])
//! is **bit-identical** to the unpruned scan
//! ([`regq_core::PrototypeArena::resolve_batch`]) — not merely close.
//! The expanded-form screening tile may only *discard* blocks, and only
//! under a conservative slack that over-covers its re-association error;
//! every surviving block is verified by the exact AoSoA kernel, which
//! replays the scalar kernels' operation order per row. These properties
//! pin that contract across arena sizes K ∈ {64, 257, 1024, 4096} ×
//! batch sizes {1, 7, 64, 1000} × shard counts {1, 2, 4, 8}, with balls
//! straddling cluster/shard boundaries, near-tie queries whose top
//! candidates differ by less than the screening slack, and — the
//! load-bearing direction — a directed test showing that *removing* the
//! slack (`with_slack_scale(0.0)`) makes screening wrong on adversarial
//! large-magnitude geometry, so the slack term is doing real work.
//!
//! On failure the proptest shim prints a `REGQ_PROPTEST_SEED=<n>` line —
//! re-run with that env var set to reproduce the exact case.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regq_core::{
    sharded_q1_with_confidence_batch, sharded_q1_with_confidence_batch_pruned,
    sharded_q2_with_confidence_batch, sharded_q2_with_confidence_batch_pruned, BatchResolution,
    LlmModel, ModelConfig, Prototype, PrototypeArena, Query, ScreenCounters, ServingSnapshot,
    ShardPart,
};
use std::sync::OnceLock;

const ARENA_KS: [usize; 4] = [64, 257, 1024, 4096];
const BATCH_SIZES: [usize; 4] = [1, 7, 64, 1000];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A synthetic K-prototype arena in `dim` dimensions: half the
/// prototypes clustered tightly around seeded anchors (so block pruning
/// has something to skip), half spread uniformly (so plenty of blocks
/// stay live).
fn synthetic_arena(k: usize, dim: usize, seed: u64) -> PrototypeArena {
    let mut rng = StdRng::seed_from_u64(seed);
    let anchors: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..dim).map(|_| rng.random_range(-8.0..8.0)).collect())
        .collect();
    let protos: Vec<Prototype> = (0..k)
        .map(|i| {
            let center: Vec<f64> = if i % 2 == 0 {
                let a = &anchors[(i / 2) % anchors.len()];
                a.iter().map(|&c| c + rng.random_range(-0.1..0.1)).collect()
            } else {
                (0..dim).map(|_| rng.random_range(-10.0..10.0)).collect()
            };
            Prototype {
                center,
                radius: rng.random_range(0.01..0.4),
                y: rng.random_range(-1.0..1.0),
                b_x: (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect(),
                b_theta: rng.random_range(-1.0..1.0),
                updates: i as u64,
            }
        })
        .collect();
    PrototypeArena::from_prototypes(dim, &protos)
}

/// Assert pruned == unpruned bit-for-bit on `queries`, and that the
/// telemetry accounting is airtight.
fn assert_pruned_matches(arena: &PrototypeArena, queries: &[Query]) {
    let layout = arena.build_layout();
    let mut plain = BatchResolution::new();
    let mut pruned = BatchResolution::new();
    let mut counters = ScreenCounters::default();
    arena.resolve_batch(queries, &mut plain);
    layout.resolve_batch_pruned(queries, &mut pruned, &mut counters);
    assert_eq!(plain.len(), pruned.len());
    for i in 0..plain.len() {
        let (wa, da) = plain.winner(i);
        let (wb, db) = pruned.winner(i);
        assert_eq!(wa, wb, "winner index diverged on query {i}");
        assert_eq!(
            da.to_bits(),
            db.to_bits(),
            "winner distance bits, query {i}"
        );
        let (oa, ob) = (plain.overlap(i), pruned.overlap(i));
        assert_eq!(oa.len(), ob.len(), "overlap cardinality, query {i}");
        for (ea, eb) in oa.iter().zip(ob) {
            assert_eq!(ea.0, eb.0, "overlap member, query {i}");
            assert_eq!(
                ea.1.to_bits(),
                eb.1.to_bits(),
                "overlap degree bits, query {i}"
            );
        }
    }
    assert_eq!(
        counters.blocks,
        (queries.len() * layout.num_blocks()) as u64,
        "every (query, block) visit must be counted"
    );
    assert_eq!(counters.blocks, counters.skipped + counters.verified);
    assert!(counters.screened <= counters.blocks);
}

/// Boundary-straddling probe balls over the synthetic arenas' [-10, 10]^d
/// domain: cluster-sized through domain-dwarfing radii.
fn probe_balls(dim: usize, seed_ball: &Query, rng_seed: u64, n: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut out = vec![seed_ball.clone()];
    while out.len() < n {
        let c: Vec<f64> = (0..dim).map(|_| rng.random_range(-12.0..12.0)).collect();
        out.push(Query::new_unchecked(c, rng.random_range(0.01..25.0)));
    }
    out
}

/// Trained shard fixtures, mirroring `batch_equivalence.rs`: per shard
/// count, `(snapshot, ascending disjoint global ids)` parts with a
/// trailing empty shard for counts > 2.
#[allow(clippy::type_complexity)]
fn sharded_fixtures() -> &'static Vec<(usize, Vec<(ServingSnapshot, Vec<usize>)>)> {
    static PARTS: OnceLock<Vec<(usize, Vec<(ServingSnapshot, Vec<usize>)>)>> = OnceLock::new();
    PARTS.get_or_init(|| {
        SHARD_COUNTS
            .iter()
            .map(|&shards| {
                let trained = if shards > 2 { shards - 1 } else { shards };
                let mut fixtures: Vec<(ServingSnapshot, Vec<usize>)> = (0..trained)
                    .map(|si| {
                        let mut rng = StdRng::seed_from_u64(101 + 13 * si as u64);
                        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
                        cfg.gamma = 1e-4;
                        let mut m = LlmModel::new(cfg).unwrap();
                        let lo = si as f64 / trained as f64;
                        let hi = (si + 1) as f64 / trained as f64;
                        m.fit_stream((0..4_000).map(|_| {
                            let c = vec![rng.random_range(lo..hi), rng.random_range(0.0..1.0)];
                            let y = (3.0 * c[0]).sin() - c[1];
                            (Query::new_unchecked(c, rng.random_range(0.05..0.2)), y)
                        }))
                        .unwrap();
                        let snapshot = m.snapshot();
                        let ids = (0..snapshot.k()).map(|lk| lk * trained + si).collect();
                        (snapshot, ids)
                    })
                    .collect();
                if trained < shards {
                    let empty = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
                    fixtures.push((empty.snapshot(), Vec::new()));
                }
                (shards, fixtures)
            })
            .collect()
    })
}

fn borrow_parts(fixtures: &[(ServingSnapshot, Vec<usize>)]) -> Vec<ShardPart<'_>> {
    fixtures
        .iter()
        .map(|(snapshot, ids)| ShardPart { snapshot, ids })
        .collect()
}

/// The full K sweep at every batch size, deterministic seeds — the
/// directed (non-proptest) backbone of the matrix, so the 4096-prototype
/// point is always exercised even if the proptest case budget is tiny.
#[test]
fn pruned_matches_unpruned_across_the_k_matrix() {
    for (ki, &k) in ARENA_KS.iter().enumerate() {
        let dim = 2 + ki % 3;
        let arena = synthetic_arena(k, dim, 0xA5A5 + k as u64);
        let seed_ball = Query::new_unchecked(vec![0.0; dim], 5.0);
        for &size in &BATCH_SIZES {
            // The largest batch only at the two largest K (keeps the
            // sweep under test-profile budget without losing the
            // 4096 × 1000 corner).
            if size == 1000 && k < 1024 {
                continue;
            }
            let queries = probe_balls(dim, &seed_ball, 7 * k as u64 + size as u64, size);
            assert_pruned_matches(&arena, &queries);
        }
    }
}

/// Directed: near-tie queries whose best candidates sit within the
/// screening slack band of each other, across blocks. The winner must
/// still be the lowest-index prototype among the bit-equal minima, and
/// pruning must not disturb that.
#[test]
fn near_ties_inside_the_slack_band_survive_pruning() {
    let dim = 3;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xBEE5 + seed);
        let q_center: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        // Candidates on a sphere of radius ~2 around the query center,
        // jittered by less than the slack bound at this scale, so their
        // squared distances differ by (much) less than the screening
        // slack and block-level bounds cannot separate them.
        let slack = regq_linalg::vector::screening_slack(dim + 1, 16.0);
        let protos: Vec<Prototype> = (0..192)
            .map(|i| {
                let dir: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
                let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-9);
                let r = 2.0 + (i % 3) as f64 * slack * rng.random_range(0.0..0.25);
                Prototype {
                    center: q_center
                        .iter()
                        .zip(&dir)
                        .map(|(&c, &d)| c + d / norm * r)
                        .collect(),
                    radius: 0.05,
                    y: 0.0,
                    b_x: vec![0.0; dim],
                    b_theta: 0.0,
                    updates: 0,
                }
            })
            .collect();
        let arena = PrototypeArena::from_prototypes(dim, &protos);
        let queries: Vec<Query> = (0..5)
            .map(|j| Query::new_unchecked(q_center.clone(), 1.9 + 0.05 * j as f64))
            .collect();
        assert_pruned_matches(&arena, &queries);
    }
}

/// Directed: the slack is load-bearing. With the slack zeroed
/// (`with_slack_scale(0.0)`) and geometry far from the origin — where the
/// expanded form `‖q‖² − 2q·r + ‖r‖²` cancels catastrophically — the
/// screen prunes true winners and resolution diverges from the exact
/// scan. If this test ever stops failing-without-slack, the screening
/// phase has stopped depending on the bound and the grammar should be
/// revisited.
#[test]
fn zeroed_slack_is_caught_by_the_equivalence_battery() {
    let dim = 2;
    let mut rng = StdRng::seed_from_u64(42);
    // Geometry at magnitude ~3e8: squared magnitudes ~1.8e17, where one
    // ulp is ~32 — so the expanded form's cancellation error dwarfs the
    // deliberately tiny (~2e-3) overlap margins below. Block A holds the
    // winner (a tight cluster around the probe center); block B sits
    // just inside the overlap boundary along axis 0, so its membership
    // hinges on exactly the comparisons the slack is there to protect.
    let base = 3.0e8;
    let q_radius = 1.0;
    let proto_radius = 0.01;
    let margin = 1.0e-3;
    let reach = q_radius + proto_radius - margin;
    let cluster = |rng: &mut StdRng| -> Vec<f64> {
        vec![
            base + rng.random_range(-1.0e-6..1.0e-6),
            base + rng.random_range(-1.0e-6..1.0e-6),
        ]
    };
    let protos: Vec<Prototype> = (0..128)
        .map(|i| Prototype {
            // Block B's rows share ONE coordinate vector: its overlap
            // flag then rides a single rounding of the expanded form
            // instead of an OR over 64 independent roundings (which
            // would almost surely keep one row inside the ball).
            center: if i < 64 {
                cluster(&mut rng)
            } else {
                vec![base + reach, base]
            },
            radius: proto_radius,
            y: 0.0,
            b_x: vec![0.0; dim],
            b_theta: 0.0,
            updates: 0,
        })
        .collect();
    let arena = PrototypeArena::from_prototypes(dim, &protos);
    let layout_honest = arena.build_layout();
    let layout_underslacked = arena.build_layout().with_slack_scale(0.0);
    // Probe centers jitter far below the margin but far above the ulp of
    // the coordinates, so every query sees a fresh set of roundings in
    // `‖q‖² − 2⟨q, r⟩ + ‖r‖²` while all of block B stays truly inside
    // its overlap ball.
    let queries: Vec<Query> = (0..64)
        .map(|_| Query::new_unchecked(cluster(&mut rng), q_radius))
        .collect();
    let mut plain = BatchResolution::new();
    arena.resolve_batch(&queries, &mut plain);

    // The honest slack stays bit-identical even here.
    let mut pruned = BatchResolution::new();
    let mut counters = ScreenCounters::default();
    layout_honest.resolve_batch_pruned(&queries, &mut pruned, &mut counters);
    for i in 0..plain.len() {
        assert_eq!(plain.winner(i).0, pruned.winner(i).0);
        assert_eq!(plain.winner(i).1.to_bits(), pruned.winner(i).1.to_bits());
    }

    // The zeroed slack must diverge somewhere: winner index, winner
    // bits, or overlap set. Otherwise the slack term is dead weight.
    let mut zeroed = BatchResolution::new();
    let mut zc = ScreenCounters::default();
    layout_underslacked.resolve_batch_pruned(&queries, &mut zeroed, &mut zc);
    let mut mismatches = 0usize;
    for i in 0..plain.len() {
        let winners_differ = plain.winner(i).0 != zeroed.winner(i).0
            || plain.winner(i).1.to_bits() != zeroed.winner(i).1.to_bits();
        let overlaps_differ = plain.overlap(i).len() != zeroed.overlap(i).len()
            || plain
                .overlap(i)
                .iter()
                .zip(zeroed.overlap(i))
                .any(|(a, b)| a.0 != b.0 || a.1.to_bits() != b.1.to_bits());
        if winners_differ || overlaps_differ {
            mismatches += 1;
        }
    }
    assert!(
        mismatches > 0,
        "zeroing the screening slack must break equivalence on \
         large-magnitude geometry — the slack is supposed to be load-bearing \
         ({} blocks skipped under-slacked vs {} honestly)",
        zc.skipped,
        counters.skipped,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random arenas × random boundary-straddling batches: pruned equals
    /// unpruned bit for bit, and the telemetry always balances.
    #[test]
    fn pruned_resolution_matches_on_random_arenas(
        k in 64usize..512,
        dim in 2usize..5,
        coords in prop::collection::vec(-12.0..12.0f64, 4),
        radius in 0.01..25.0f64,
        rng_seed in any::<u64>(),
    ) {
        let arena = synthetic_arena(k, dim, rng_seed);
        let seed_ball = Query::new_unchecked(coords[..dim].to_vec(), radius);
        for &size in &[1usize, 7, 64] {
            let queries = probe_balls(dim, &seed_ball, rng_seed ^ size as u64, size);
            assert_pruned_matches(&arena, &queries);
        }
    }

    /// The pruned cross-shard batch drivers equal the unpruned drivers
    /// (already pinned bit-identical to the scalar path by
    /// `batch_equivalence.rs`) across the shard × batch matrix.
    #[test]
    fn sharded_pruned_drivers_match_unpruned(
        coords in prop::collection::vec(-0.5..1.5f64, 2),
        radius in 0.01..1.5f64,
        rng_seed in any::<u64>(),
    ) {
        let seed_ball = Query::new_unchecked(coords, radius);
        for (_, fixtures) in sharded_fixtures() {
            let parts = borrow_parts(fixtures);
            for &size in &BATCH_SIZES {
                let mut rng = StdRng::seed_from_u64(rng_seed);
                let queries: Vec<Query> = std::iter::once(seed_ball.clone())
                    .chain((1..size).map(|_| {
                        let c: Vec<f64> =
                            (0..2).map(|_| rng.random_range(-0.5..1.5)).collect();
                        Query::new_unchecked(c, rng.random_range(0.01..1.5))
                    }))
                    .collect();
                let plain_q1 = sharded_q1_with_confidence_batch(&parts, &queries);
                let plain_q2 = sharded_q2_with_confidence_batch(&parts, &queries);
                let mut c1 = ScreenCounters::default();
                let mut c2 = ScreenCounters::default();
                let pruned_q1 =
                    sharded_q1_with_confidence_batch_pruned(&parts, &queries, &mut c1);
                let pruned_q2 =
                    sharded_q2_with_confidence_batch_pruned(&parts, &queries, &mut c2);
                prop_assert_eq!(&plain_q1, &pruned_q1);
                prop_assert_eq!(&plain_q2, &pruned_q2);
                prop_assert_eq!(c1.blocks, c1.skipped + c1.verified);
                prop_assert_eq!(c2.blocks, c2.skipped + c2.verified);
                prop_assert!(c1.blocks > 0, "trained shards must be consulted");
            }
        }
    }
}
