//! Property-based tests for the model invariants.

use proptest::prelude::*;
use regq_core::{overlap_degree, LlmModel, ModelConfig, Query};

fn query_strategy(d: usize) -> impl Strategy<Value = Query> {
    (prop::collection::vec(-1.0..2.0f64, d), 0.01..0.8f64)
        .prop_map(|(c, r)| Query::new_unchecked(c, r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// δ is symmetric and confined to [0, 1]; δ(q, q) = 1.
    #[test]
    fn overlap_degree_axioms(a in query_strategy(3), b in query_strategy(3)) {
        let dab = overlap_degree(&a, &b);
        let dba = overlap_degree(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert!((overlap_degree(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Joint query distance satisfies the triangle inequality (it is the
    /// Euclidean metric on R^{d+1}).
    #[test]
    fn query_distance_triangle(a in query_strategy(2),
                               b in query_strategy(2),
                               c in query_strategy(2)) {
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
    }

    /// Training on arbitrary finite pairs keeps every model parameter
    /// finite, and predictions stay finite for arbitrary probe queries.
    #[test]
    fn training_preserves_finiteness(
        pairs in prop::collection::vec((query_strategy(2), -100.0..100.0f64), 1..200),
        probe in query_strategy(2),
    ) {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        for (q, y) in &pairs {
            m.train_step(q, *y).unwrap();
        }
        for p in m.prototypes() {
            prop_assert!(p.center.iter().all(|v| v.is_finite()));
            prop_assert!(p.radius.is_finite() && p.y.is_finite());
            prop_assert!(p.b_x.iter().all(|v| v.is_finite()));
            prop_assert!(p.b_theta.is_finite());
        }
        prop_assert!(m.predict_q1(&probe).unwrap().is_finite());
        for lm in m.predict_q2(&probe).unwrap() {
            prop_assert!(lm.intercept.is_finite());
            prop_assert!(lm.slope.iter().all(|v| v.is_finite()));
        }
    }

    /// When every query lands within ρ of the first one, the codebook never
    /// grows past K = 1 (vigilance is the only growth trigger).
    #[test]
    fn vigilance_bounds_growth(offsets in prop::collection::vec((-0.1..0.1f64, -0.1..0.1f64), 1..50)) {
        let cfg = ModelConfig::paper_defaults(2); // ρ ≈ 0.60
        let rho = cfg.rho();
        let mut m = LlmModel::new(cfg).unwrap();
        let base = Query::new_unchecked(vec![0.5, 0.5], 0.1);
        m.train_step(&base, 1.0).unwrap();
        for (dx, dy) in offsets {
            // Offsets are ≤ √(0.02) ≈ 0.14 « ρ even after prototype drift
            // (the prototype stays inside the convex hull of its queries).
            let q = Query::new_unchecked(vec![0.5 + dx, 0.5 + dy], 0.1);
            prop_assert!(q.sq_dist_parts(&[0.5, 0.5], 0.1).sqrt() < rho);
            m.train_step(&q, 1.0).unwrap();
        }
        prop_assert_eq!(m.k(), 1);
    }

    /// Q1 prediction is a convex combination of the overlapping LLM
    /// evaluations: it lies inside their [min, max] envelope.
    #[test]
    fn q1_is_convex_combination(
        pairs in prop::collection::vec((query_strategy(2), -10.0..10.0f64), 20..100),
        probe in query_strategy(2),
    ) {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        for (q, y) in &pairs {
            m.train_step(q, *y).unwrap();
        }
        let w = m.overlap_set(&probe);
        if w.is_empty() {
            return Ok(());
        }
        let evals: Vec<f64> = w
            .iter()
            .map(|&(k, _)| m.arena().eval(k, &probe.center, probe.radius))
            .collect();
        let lo = evals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = evals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pred = m.predict_q1(&probe).unwrap();
        prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9,
                     "pred {pred} outside envelope [{lo}, {hi}]");
    }

    /// Persistence round-trips arbitrary trained models exactly.
    #[test]
    fn persist_round_trip(
        pairs in prop::collection::vec((query_strategy(2), -5.0..5.0f64), 1..60),
        seed in 0u64..1000,
    ) {
        let mut m = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
        for (q, y) in &pairs {
            m.train_step(q, *y).unwrap();
        }
        let path = std::env::temp_dir().join(format!(
            "regq-proptest-{}-{seed}.model",
            std::process::id()
        ));
        regq_core::persist::save_model(&m, &path).unwrap();
        let loaded = regq_core::persist::load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(m.prototypes(), loaded.prototypes());
        prop_assert_eq!(m.config(), loaded.config());
    }
}
