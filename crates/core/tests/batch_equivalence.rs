//! The acceptance gate for the batched serving path.
//!
//! # Equivalence contract
//!
//! The batched serving path is **bit-identical** to the scalar serving
//! path — not merely close. A batch of any size, over any shard layout,
//! returns for every query *exactly* the bytes the scalar call sequence
//! returns for that query: the fused winner/overlap kernel
//! ([`regq_linalg::vector::winner_overlap_block`]) performs per
//! `(query, prototype)` pair exactly the additions of the scalar kernels
//! in the same order, winner ties keep the lowest index (lowest global id
//! across shards), overlap members fuse in ascending (global) prototype
//! order, and the per-query folds are the shared scalar folds. The only
//! intended difference is *consistency*, not *value*: a batch resolves
//! every query against one snapshot, where a scalar loop may straddle a
//! republish.
//!
//! These properties pin that contract across shard counts {1, 2, 4, 8}
//! (including an empty shard) × batch sizes {1, 7, 64, 1000}, with balls
//! that straddle the trained domain's boundary and dwarf the prototype
//! radii. On failure the proptest shim prints a `REGQ_PROPTEST_SEED=<n>`
//! line — re-run with that env var set to reproduce the exact case.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regq_core::{
    sharded_q1_with_confidence, sharded_q1_with_confidence_batch, sharded_q2_with_confidence,
    sharded_q2_with_confidence_batch, LlmModel, ModelConfig, Query, ServingSnapshot, ShardPart,
};
use std::sync::OnceLock;

const BATCH_SIZES: [usize; 4] = [1, 7, 64, 1000];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One trained 2-d snapshot for the single-arena batch predictors.
fn trained_snapshot() -> &'static ServingSnapshot {
    static SNAP: OnceLock<ServingSnapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(23);
        let mut cfg = ModelConfig::with_vigilance(2, 0.12);
        cfg.gamma = 1e-4;
        let mut m = LlmModel::new(cfg).unwrap();
        m.fit_stream((0..12_000).map(|_| {
            let c: Vec<f64> = (0..2).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = (4.0 * c[0]).sin() + c[1] * c[1];
            (Query::new_unchecked(c, rng.random_range(0.05..0.15)), y)
        }))
        .unwrap();
        m.snapshot()
    })
}

/// Per shard count, the published parts: `(snapshot, global ids)` with
/// ids strictly ascending per part and disjoint across parts (the
/// [`ShardPart`] invariants). For 4 and 8 shards the last trained slot is
/// followed by an **empty** shard, pinning the empty-part skip on both
/// sides of the contract.
#[allow(clippy::type_complexity)]
fn sharded_fixtures() -> &'static Vec<(usize, Vec<(ServingSnapshot, Vec<usize>)>)> {
    static PARTS: OnceLock<Vec<(usize, Vec<(ServingSnapshot, Vec<usize>)>)>> = OnceLock::new();
    PARTS.get_or_init(|| {
        SHARD_COUNTS
            .iter()
            .map(|&shards| {
                let trained = if shards > 2 { shards - 1 } else { shards };
                let mut fixtures: Vec<(ServingSnapshot, Vec<usize>)> = (0..trained)
                    .map(|si| {
                        let mut rng = StdRng::seed_from_u64(31 + 7 * si as u64);
                        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
                        cfg.gamma = 1e-4;
                        let mut m = LlmModel::new(cfg).unwrap();
                        // Each shard trains on its own slice of the domain,
                        // so shard boundaries fall inside [0, 1]² and wide
                        // probe balls straddle them.
                        let lo = si as f64 / trained as f64;
                        let hi = (si + 1) as f64 / trained as f64;
                        m.fit_stream((0..4_000).map(|_| {
                            let c = vec![rng.random_range(lo..hi), rng.random_range(0.0..1.0)];
                            let y = c[0] - 2.0 * c[1];
                            (Query::new_unchecked(c, rng.random_range(0.05..0.2)), y)
                        }))
                        .unwrap();
                        let snapshot = m.snapshot();
                        let ids = (0..snapshot.k()).map(|lk| lk * trained + si).collect();
                        (snapshot, ids)
                    })
                    .collect();
                if trained < shards {
                    let empty = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
                    fixtures.push((empty.snapshot(), Vec::new()));
                }
                (shards, fixtures)
            })
            .collect()
    })
}

fn borrow_parts(fixtures: &[(ServingSnapshot, Vec<usize>)]) -> Vec<ShardPart<'_>> {
    fixtures
        .iter()
        .map(|(snapshot, ids)| ShardPart { snapshot, ids })
        .collect()
}

/// `n` probe balls: the proptest-chosen seed ball first, then a seeded
/// stream of balls spanning centers in [-0.5, 1.5]² (straddling the
/// trained [0, 1]² domain and every internal shard boundary) and radii
/// from prototype-sized (0.01) to domain-dwarfing (1.5).
fn probe_balls(seed_ball: &Query, rng_seed: u64, n: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut out = vec![seed_ball.clone()];
    while out.len() < n {
        let c: Vec<f64> = (0..2).map(|_| rng.random_range(-0.5..1.5)).collect();
        out.push(Query::new_unchecked(c, rng.random_range(0.01..1.5)));
    }
    out
}

#[test]
fn fixtures_cover_the_shard_matrix() {
    let all = sharded_fixtures();
    assert_eq!(all.len(), SHARD_COUNTS.len());
    for (shards, fixtures) in all {
        assert_eq!(fixtures.len(), *shards);
        let trained: Vec<_> = fixtures.iter().filter(|(s, _)| s.k() > 0).collect();
        assert!(!trained.is_empty());
        if *shards > 2 {
            assert_eq!(fixtures.last().unwrap().0.k(), 0, "last shard stays empty");
        }
        // The ShardPart id invariants the equivalence argument leans on.
        let mut seen = std::collections::BTreeSet::new();
        for (snapshot, ids) in fixtures.iter() {
            assert_eq!(ids.len(), snapshot.k());
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
            for id in ids {
                assert!(seen.insert(*id), "global ids must be disjoint");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every single-arena batch predictor equals its scalar loop, bit for
    /// bit, at every batch size.
    #[test]
    fn snapshot_batch_predictors_match_scalar_loops(
        coords in prop::collection::vec(-0.5..1.5f64, 2),
        radius in 0.01..1.5f64,
        rng_seed in any::<u64>(),
    ) {
        let snap = trained_snapshot();
        let seed_ball = Query::new_unchecked(coords, radius);
        for &size in &BATCH_SIZES {
            let queries = probe_balls(&seed_ball, rng_seed, size);
            let q1 = snap.predict_q1_batch(&queries).unwrap();
            let q2 = snap.predict_q2_batch(&queries).unwrap();
            let conf = snap.confidence_batch(&queries).unwrap();
            let q1c = snap.predict_q1_with_confidence_batch(&queries).unwrap();
            let q2c = snap.predict_q2_with_confidence_batch(&queries).unwrap();
            let xs: Vec<Vec<f64>> = queries.iter().map(|q| q.center.clone()).collect();
            let values = snap.predict_value_batch(&queries, &xs).unwrap();
            for (i, q) in queries.iter().enumerate() {
                prop_assert_eq!(q1[i], snap.predict_q1(q).unwrap());
                prop_assert_eq!(&q2[i], &snap.predict_q2(q).unwrap());
                prop_assert_eq!(&conf[i], &snap.confidence(q).unwrap());
                prop_assert_eq!(&q1c[i], &snap.predict_q1_with_confidence(q).unwrap());
                prop_assert_eq!(&q2c[i], &snap.predict_q2_with_confidence(q).unwrap());
                prop_assert_eq!(values[i], snap.predict_value(q, &q.center).unwrap());
            }
        }
    }

    /// The cross-shard batch drivers equal the scalar sharded calls, bit
    /// for bit, across the full shard-count × batch-size matrix.
    #[test]
    fn sharded_batch_drivers_match_scalar_loops(
        coords in prop::collection::vec(-0.5..1.5f64, 2),
        radius in 0.01..1.5f64,
        rng_seed in any::<u64>(),
    ) {
        let seed_ball = Query::new_unchecked(coords, radius);
        for (_, fixtures) in sharded_fixtures() {
            let parts = borrow_parts(fixtures);
            for &size in &BATCH_SIZES {
                let queries = probe_balls(&seed_ball, rng_seed, size);
                let q1 = sharded_q1_with_confidence_batch(&parts, &queries);
                let q2 = sharded_q2_with_confidence_batch(&parts, &queries);
                prop_assert_eq!(q1.len(), queries.len());
                prop_assert_eq!(q2.len(), queries.len());
                for (i, q) in queries.iter().enumerate() {
                    prop_assert_eq!(&q1[i], &sharded_q1_with_confidence(&parts, q));
                    prop_assert_eq!(&q2[i], &sharded_q2_with_confidence(&parts, q));
                }
            }
        }
    }

    /// Degenerate batches: empty in, empty out; a 1-query batch is the
    /// scalar call.
    #[test]
    fn batch_edges_hold(
        coords in prop::collection::vec(-0.5..1.5f64, 2),
        radius in 0.01..1.5f64,
    ) {
        let snap = trained_snapshot();
        prop_assert!(snap.predict_q1_batch(&[]).unwrap().is_empty());
        let q = Query::new_unchecked(coords, radius);
        let lone = snap.predict_q1_with_confidence_batch(std::slice::from_ref(&q)).unwrap();
        prop_assert_eq!(&lone[0], &snap.predict_q1_with_confidence(&q).unwrap());
        for (_, fixtures) in sharded_fixtures() {
            let parts = borrow_parts(fixtures);
            prop_assert!(sharded_q1_with_confidence_batch(&parts, &[]).is_empty());
            let lone = sharded_q1_with_confidence_batch(&parts, std::slice::from_ref(&q));
            prop_assert_eq!(&lone[0], &sharded_q1_with_confidence(&parts, &q));
        }
    }
}
