//! # regq — query-driven regression queries for in-DBMS analytics
//!
//! A from-scratch Rust reproduction of Anagnostopoulos & Triantafillou,
//! *"Efficient Scalable Accurate Regression Queries in In-DBMS Analytics"*
//! (IEEE ICDE 2017).
//!
//! The system learns from previously executed mean-value (Q1) and
//! regression (Q2) analytics queries and afterwards answers *new* queries
//! over arbitrary data subspaces **without touching the data** — in
//! `O(dK)` per query, independent of table size.
//!
//! ## Quickstart
//!
//! ```
//! use regq::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A "database": rows sampled from a non-linear surface (kept small
//! //    here so the doctest is quick; see examples/ for realistic sizes).
//! let field = GasSensorSurrogate::new(2, 7);
//! let mut rng = seeded(1);
//! let data = Dataset::from_function(&field, 10_000, SampleOptions::default(), &mut rng);
//! let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);
//!
//! // 2. Train from the analyst query stream (the paper's Fig. 2 loop).
//! let gen = QueryGenerator::for_function(&field, 0.1);
//! let mut model = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
//! let report = train_from_engine(&mut model, &engine, &gen, 15_000, &mut rng).unwrap();
//! assert!(report.consumed > 100);
//!
//! // 3. Answer an unseen Q1 with zero data access.
//! let q = Query::new(vec![0.4, 0.6], 0.1).unwrap();
//! let fast = model.predict_q1(&q).unwrap();
//! let exact = engine.q1(&q.center, q.radius).unwrap();
//! assert!((fast - exact).abs() < 0.25);
//!
//! // 4. Q2: the list of local linear models over the subspace.
//! let local_models = model.predict_q2(&q).unwrap();
//! assert!(!local_models.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`core`] | the paper's model: vigilance AVQ + Local Linear Mappings |
//! | [`exact`] | exact engines: Q1, REG (OLS), PLR (MARS) |
//! | [`serve`] | concurrent snapshot serving: lock-free publication + confidence-gated hybrid routing |
//! | [`sql`] | declarative front end: `USING EXACT \| MODEL \| AUTO` |
//! | [`store`] | column store + dNN selection access paths |
//! | [`data`] | datasets: Rosenbrock (R2), gas-sensor surrogate (R1) |
//! | [`workload`] | query generation, Fig.-2 training loop, evaluators |
//! | [`linalg`] | dense linear algebra substrate |
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every reproduced figure.

pub use regq_core as core;
pub use regq_data as data;
pub use regq_exact as exact;
pub use regq_linalg as linalg;
pub use regq_serve as serve;
pub use regq_sql as sql;
pub use regq_store as store;
pub use regq_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use regq_core::{
        overlap_degree, overlaps, Confidence, CoreError, LearningSchedule, LlmModel, LocalModel,
        ModelConfig, MomentsModel, Prototype, Query, ServingSnapshot, StepOutcome, TrainReport,
    };
    pub use regq_data::generators::{
        Doppler1d, Friedman1, GasSensorSurrogate, PiecewiseLinear1d, Rosenbrock, Saddle2d,
        SineRidge1d,
    };
    pub use regq_data::rng::seeded;
    pub use regq_data::{DataFunction, Dataset, SampleOptions};
    pub use regq_exact::{
        fit_ols, fit_ols_global, q1_mean, q1_moments, ExactEngine, GoodnessOfFit, LinearModel,
        Mars, MarsModel, MarsParams, Moments,
    };
    pub use regq_serve::{
        FaultKind, FaultPlan, Feedback, Route, RoutePolicy, RouterStats, ServeEngine, ServeError,
        Served, ShardRouter, ShardSnapshot, SnapshotCell, StallGate,
    };
    pub use regq_store::{AccessPathKind, Norm, Relation};
    pub use regq_workload::{
        eval::{
            evaluate_data_values, evaluate_q1, evaluate_q2, time_q1_exact, time_q1_llm,
            time_q2_llm, time_q2_plr_exact, time_q2_reg_exact,
        },
        train_from_engine, LatencyStats, QueryGenerator, StreamReport,
    };
}
