//! R1-style scenario: chemometrics over a gas-sensor array (the paper's
//! real dataset), in higher dimension (d = 5) with sensor drift.
//!
//! Shows:
//! * training at the paper's default settings (a = 0.25, γ = 0.01),
//! * prediction accuracy vs the exact engine on unseen queries (A1/A2),
//! * the drift-adaptation extension (E-2): the sensor response shifts and
//!   the unfrozen model tracks it, while a frozen model goes stale,
//! * codebook compaction (E-3).
//!
//! ```sh
//! cargo run --release --example sensor_calibration
//! ```

use regq::core::adapt::{enable_drift_tracking, merge_close_prototypes, prune_rare_prototypes};
use regq::prelude::*;
use std::sync::Arc;

fn main() {
    let d = 5;
    let field = GasSensorSurrogate::new(d, 1313);
    let mut rng = seeded(99);

    // Raw (un-normalized) outputs so the drift simulation below stays
    // visible — batch renormalization would silently cancel the shift.
    let raw = SampleOptions {
        normalize_output: false,
        ..Default::default()
    };
    println!("materializing 500,000 calibration rows (d = {d}) ...");
    let data = Dataset::from_function(&field, 500_000, raw, &mut rng);
    let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);

    // Finer-than-default vigilance: in d = 5 the paper-default a = 0.25
    // yields only a handful of prototypes, too coarse to expose local
    // structure; a = 0.18 lands near a hundred. θ covers ~20% of each
    // feature range → enough mass per ball even in d = 5.
    let gen = QueryGenerator::for_function(&field, 0.2);
    let mut cfg = ModelConfig::with_vigilance(d, 0.18);
    cfg.gamma = 2e-3;
    let mut model = LlmModel::new(cfg).expect("config");
    let report = train_from_engine(&mut model, &engine, &gen, 120_000, &mut rng).expect("training");
    println!(
        "trained: |T| = {} pairs, K = {}, converged = {}",
        report.consumed, report.prototypes, report.converged
    );

    // --- A1 accuracy on unseen queries ---------------------------------
    let q1 = evaluate_q1(&model, &engine, &gen, 2_000, &mut rng);
    println!(
        "\nA1 (mean-value) over {} unseen queries: RMSE = {:.4}",
        q1.n, q1.rmse
    );

    // --- A2 data-value accuracy vs global REG --------------------------
    let a2 = evaluate_data_values(&model, &engine, &gen, 300, 20, None, &mut rng);
    println!(
        "A2 (data values) over {} points: LLM RMSE = {:.4}, global-REG RMSE = {:.4}",
        a2.n, a2.rmse_llm, a2.rmse_reg_global
    );

    // --- Codebook compaction (E-3) --------------------------------------
    let k_before = model.k();
    let merge_dist = model.config().rho() * 0.25;
    let merged = merge_close_prototypes(&mut model, merge_dist);
    let pruned = prune_rare_prototypes(&mut model, 3);
    let q1_after = evaluate_q1(&model, &engine, &gen, 2_000, &mut rng);
    println!(
        "\ncompaction: K {} → {} ({merged} merged, {pruned} pruned); RMSE {:.4} → {:.4}",
        k_before,
        model.k(),
        q1.rmse,
        q1_after.rmse
    );

    // --- Sensor drift (E-2) ---------------------------------------------
    // The array's response shifts by +0.15 across the board (baseline
    // drift after recalibration). A frozen model keeps predicting the old
    // level; drift tracking follows.
    println!("\nsimulating baseline drift of +0.15 on the response ...");
    let drifted = regq::data::function::FnFunction::unit_box("drifted", d, {
        let f = field.clone();
        move |x| f.eval(x) + 0.15
    });
    let mut rng2 = seeded(7);
    let new_data = Dataset::from_function(&drifted, 500_000, raw, &mut rng2);
    let new_engine = ExactEngine::new(Arc::new(new_data), AccessPathKind::KdTree);

    let stale = model.clone();
    enable_drift_tracking(&mut model, 0.15);
    let mut consumed = 0;
    for _ in 0..20_000 {
        let q = gen.generate(&mut rng2);
        if let Some(y) = new_engine.q1(&q.center, q.radius) {
            model.train_step(&q, y).expect("train");
            consumed += 1;
        }
    }
    println!("re-trained on {consumed} post-drift queries with constant η = 0.15");

    let stale_eval = evaluate_q1(&stale, &new_engine, &gen, 1_500, &mut rng2);
    let fresh_eval = evaluate_q1(&model, &new_engine, &gen, 1_500, &mut rng2);
    println!(
        "post-drift RMSE: frozen model = {:.4}, drift-tracking model = {:.4}",
        stale_eval.rmse, fresh_eval.rmse
    );
    if fresh_eval.rmse < stale_eval.rmse {
        println!("drift tracking recovered the accuracy loss ✔");
    }
}
