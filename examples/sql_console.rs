//! The in-DBMS face of the system: a SQL session over a relation, with
//! both exact and model-served execution of the paper's Q1/Q2 dialect.
//!
//! ```sh
//! cargo run --release --example sql_console
//! ```

use regq::core::moments::{MomentPair, MomentsModel};
use regq::prelude::*;
use regq::sql::Session;
use std::sync::Arc;

fn main() {
    // A relation and its analyst workload.
    let field = GasSensorSurrogate::new(2, 99);
    let mut rng = seeded(42);
    println!("-- loading table 'readings' (150,000 rows) ...");
    let data = Dataset::from_function(&field, 150_000, SampleOptions::default(), &mut rng);
    let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);

    // Train the serving models from the query log.
    println!("-- training serving models from the query log ...");
    let gen = QueryGenerator::for_function(&field, 0.1);
    let mut cfg = ModelConfig::with_vigilance(2, 0.15);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg.clone()).expect("config");
    let mut moments = MomentsModel::new(cfg).expect("config");
    let mut consumed = 0usize;
    for _ in 0..80_000 {
        let q = gen.generate(&mut rng);
        if let Some(mo) = engine.q1_moments(&q.center, q.radius) {
            let a = model.train_step(&q, mo.mean).expect("train").converged;
            let b = moments
                .train_step(
                    &q,
                    MomentPair {
                        mean: mo.mean,
                        variance: mo.variance,
                    },
                )
                .expect("train");
            consumed += 1;
            if a && b {
                break;
            }
        }
    }
    println!(
        "-- trained on {consumed} executed queries; K = {}",
        model.k()
    );

    // Compact the codebook before serving: prototypes spawned near the end
    // of training carry zero-initialized coefficients and would surface as
    // all-zero rows in LINREG lists (extension E-3).
    let pruned = regq::core::adapt::prune_rare_prototypes(&mut model, 2);
    if pruned > 0 {
        println!("-- pruned {pruned} under-trained prototypes before serving");
    }

    let mut session = Session::new();
    session.register_table("readings", engine);
    session.register_model("readings", model).expect("register");
    session
        .register_moments_model("readings", moments)
        .expect("register");

    // The console script: each statement in both execution modes.
    let script = [
        "SELECT COUNT(*) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
        "SELECT AVG(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
        "SELECT AVG(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15 USING MODEL;",
        "SELECT VAR(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
        "SELECT VAR(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15 USING MODEL;",
        "SELECT LINREG(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
        "SELECT LINREG(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15 USING MODEL;",
        // Confidence-gated hybrid routing: the session serves from the
        // model when the score clears the gate, otherwise executes on the
        // data — and reports the route it took either way.
        "SELECT AVG(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15 USING AUTO;",
        "SELECT AVG(u) FROM readings WHERE DIST(x, [30.0, 30.0]) <= 50.0 USING AUTO;",
        // Error cases surface as readable diagnostics, not panics.
        "SELECT AVG(u) FROM missing WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
        "SELECT MEDIAN(u) FROM readings WHERE DIST(x, [0.4, 0.6]) <= 0.15;",
    ];

    for sql in script {
        println!("\nregq> {sql}");
        match session.execute_timed(sql) {
            Ok((out, dur)) => {
                for line in out.to_string().lines() {
                    println!("  {line}");
                }
                match out.confidence {
                    Some(score) => {
                        println!("  (route: {}, confidence {score:.2}, {dur:.2?})", out.route)
                    }
                    None => println!("  (route: {}, {dur:.2?})", out.route),
                }
            }
            Err(e) => println!("  ERROR: {e}"),
        }
    }
}
