//! Reproduction of the paper's Fig. 5 (left): a 1-D non-linear data
//! function approximated by (i) the model's K local linear mappings,
//! (ii) a single global REG line, and (iii) PLR (MARS) — printed as
//! aligned series for plotting.
//!
//! ```sh
//! cargo run --release --example piecewise_explorer
//! ```

use regq::prelude::*;
use std::sync::Arc;

fn main() {
    // The non-linear u = g(x) of Fig. 5 over D(0.5, 0.5) = [0, 1].
    let field = SineRidge1d;
    let mut rng = seeded(5);
    let data = Dataset::from_function(
        &field,
        100_000,
        SampleOptions {
            normalize_output: false,
            ..Default::default()
        },
        &mut rng,
    );
    let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);

    // Vigilance chosen so the codebook lands near the paper's K = 6.
    let gen = QueryGenerator::for_function(&field, 0.08);
    let mut cfg = ModelConfig::with_vigilance(1, 0.15);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg).expect("config");
    let report = train_from_engine(&mut model, &engine, &gen, 120_000, &mut rng).expect("training");
    println!(
        "# trained on {} pairs; K = {} local linear mappings",
        report.consumed, report.prototypes
    );

    // The whole-domain exploration query of the figure.
    let whole = Query::new(vec![0.5], 0.5).expect("valid");

    // Global REG over D (the red line of Fig. 5).
    let reg = engine.q2_reg(&whole.center, whole.radius).expect("REG");
    // PLR with K linear pieces (the magenta curve of Fig. 5).
    let plr = engine
        .q2_plr(
            &whole.center,
            whole.radius,
            MarsParams::for_k_models(model.k()),
        )
        .expect("PLR");
    // The LLM list S (the green local lines of Fig. 5).
    let s = model.predict_q2(&whole).expect("prediction");
    println!(
        "# |S| = {} returned local models; PLR kept {} basis functions",
        s.len(),
        plr.n_basis()
    );

    // Emit the figure's series: truth, REG, PLR, LLM (piecewise via the
    // nearest returned local model), plus the Eq.-14 fused prediction.
    println!("x\tg(x)\tREG\tPLR\tLLM_nearest\tLLM_fused");
    for i in 0..=100 {
        let x = i as f64 / 100.0;
        let truth = field.eval(&[x]);
        let reg_y = reg.predict(&[x]);
        let plr_y = plr.predict(&[x]);
        // Nearest local model (the line segment drawn over that region).
        let nearest = s
            .iter()
            .min_by(|a, b| {
                let da = (a.center[0] - x).abs();
                let db = (b.center[0] - x).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty S");
        let llm_nearest = nearest.predict(&[x]);
        // Eq. 14 with a workload-scale probe ball centered at x (the
        // paper's A2 usage; a whole-domain ball would dilute the weights
        // over every prototype).
        let llm_fused = model.predict_value_at(&[x], 0.08).expect("prediction");
        println!("{x:.2}\t{truth:.4}\t{reg_y:.4}\t{plr_y:.4}\t{llm_nearest:.4}\t{llm_fused:.4}");
    }

    // Goodness-of-fit summary over the subspace (the figure's message:
    // REG is a poor fit, LLM ≈ PLR are good fits).
    let ids = engine.select(&whole.center, whole.radius);
    let actual: Vec<f64> = ids
        .iter()
        .map(|&i| engine.relation().dataset().y(i))
        .collect();
    let fvu_of = |pred: Vec<f64>| -> f64 {
        GoodnessOfFit::evaluate(&actual, &pred)
            .expect("non-empty")
            .fvu
    };
    let reg_fvu = fvu_of(
        ids.iter()
            .map(|&i| reg.predict(engine.relation().dataset().x(i)))
            .collect(),
    );
    let plr_fvu = fvu_of(
        ids.iter()
            .map(|&i| plr.predict(engine.relation().dataset().x(i)))
            .collect(),
    );
    let llm_fvu = fvu_of(
        ids.iter()
            .map(|&i| {
                model
                    .predict_value_at(engine.relation().dataset().x(i), 0.08)
                    .expect("prediction")
            })
            .collect(),
    );
    println!(
        "# FVU over D(0.5, 0.5):  REG = {reg_fvu:.3}   PLR = {plr_fvu:.3}   LLM = {llm_fvu:.3}"
    );
}
