//! Quickstart: train the query-driven model against an in-memory engine
//! and answer mean-value (Q1) and regression (Q2) queries without data
//! access.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regq::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ------------------------------------------------------------------
    // 1. The "database": 200k rows of a strongly non-linear 2-D surface
    //    (a stand-in for the paper's R1 gas-sensor relation).
    // ------------------------------------------------------------------
    let field = GasSensorSurrogate::new(2, 42);
    let mut rng = seeded(7);
    println!("materializing 200,000 rows of {} ...", field.name());
    let data = Dataset::from_function(&field, 200_000, SampleOptions::default(), &mut rng);
    let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);

    // ------------------------------------------------------------------
    // 2. Train from the analyst query stream (paper Fig. 2): queries are
    //    executed exactly on the engine and the (query, answer) pairs
    //    train the model until Γ ≤ γ.
    // ------------------------------------------------------------------
    let gen = QueryGenerator::for_function(&field, 0.1);
    let mut model = LlmModel::new(ModelConfig::paper_defaults(2)).expect("valid config");
    let t0 = Instant::now();
    let report = train_from_engine(&mut model, &engine, &gen, 100_000, &mut rng).expect("training");
    println!(
        "trained: {} pairs consumed, K = {} prototypes, converged = {}, {:.2?} total",
        report.consumed,
        report.prototypes,
        report.converged,
        t0.elapsed()
    );
    println!(
        "  {:.2}% of training wall-clock was query execution on the DBMS side",
        report.query_time_fraction() * 100.0
    );

    // ------------------------------------------------------------------
    // 3. Q1: mean-value query over an unseen subspace — no data access.
    // ------------------------------------------------------------------
    let q = Query::new(vec![0.4, 0.6], 0.12).expect("valid query");
    let t1 = Instant::now();
    let fast = model.predict_q1(&q).expect("prediction");
    let t_fast = t1.elapsed();
    let t2 = Instant::now();
    let exact = engine.q1(&q.center, q.radius).expect("non-empty subspace");
    let t_exact = t2.elapsed();
    println!("\nQ1 over D(x=[0.4,0.6], θ=0.12):");
    println!("  LLM prediction  = {fast:.4}   in {t_fast:.2?}");
    println!("  exact execution = {exact:.4}   in {t_exact:.2?}");
    println!(
        "  speedup ≈ {:.0}x, error = {:.4}",
        t_exact.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
        (fast - exact).abs()
    );

    // ------------------------------------------------------------------
    // 4. Q2: the list S of local linear models over the subspace.
    // ------------------------------------------------------------------
    let s = model.predict_q2(&q).expect("prediction");
    println!(
        "\nQ2 over the same subspace: |S| = {} local linear models",
        s.len()
    );
    for (i, lm) in s.iter().enumerate() {
        println!(
            "  l{}: u ≈ {:.3} + {:.3}·x1 + {:.3}·x2   (weight {:.2}, region around [{:.2}, {:.2}])",
            i + 1,
            lm.intercept,
            lm.slope[0],
            lm.slope[1],
            lm.weight,
            lm.center[0],
            lm.center[1]
        );
    }

    // ------------------------------------------------------------------
    // 5. Compare with the exact baselines the paper uses.
    // ------------------------------------------------------------------
    let reg = engine.q2_reg(&q.center, q.radius).expect("per-query REG");
    println!(
        "\nper-query REG (exact OLS over the subspace): CoD = {:.3}",
        reg.fit.cod
    );
    let plr = engine
        .q2_plr(&q.center, q.radius, MarsParams::default())
        .expect("per-query PLR");
    println!(
        "per-query PLR (MARS):                        CoD = {:.3} with {} basis functions",
        plr.fit.cod,
        plr.n_basis()
    );

    // ------------------------------------------------------------------
    // 6. Persist the trained model for serving.
    // ------------------------------------------------------------------
    let path = std::env::temp_dir().join("regq-quickstart.model");
    regq::core::persist::save_model(&model, &path).expect("save");
    let restored = regq::core::persist::load_model(&path).expect("load");
    assert_eq!(restored.k(), model.k());
    println!(
        "\nmodel saved to {} and reloaded (K = {})",
        path.display(),
        restored.k()
    );
}
