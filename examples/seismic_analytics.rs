//! The paper's §I motivating scenario: seismologists exploring P-wave
//! velocity over a geographic region.
//!
//! Analysts issue dNN queries `D(x₀, θ)` — "all measurements within θ
//! degrees of (longitude, latitude) x₀" — and ask:
//!
//! * **Q1**: the mean P-wave speed inside the disc (the best linear
//!   sufficient statistic for the region);
//! * **Q2**: how velocity depends on position — the local linear
//!   coefficients `u ≈ b₀ + b₁·lon + b₂·lat`, possibly several per region
//!   when the dependency changes across a fault line.
//!
//! We simulate a velocity field with a sharp "fault" discontinuity in
//! slope: a single global plane fits poorly, while the model's list of
//! local linear models recovers the two regimes — the paper's D1/D3
//! desiderata.
//!
//! ```sh
//! cargo run --release --example seismic_analytics
//! ```

use regq::data::function::FnFunction;
use regq::prelude::*;
use std::sync::Arc;

fn main() {
    // Velocity field over a 1°×1° region, rescaled to [0,1]²:
    // east of the "fault" (x1 > 0.55 + 0.1·x2) velocity climbs steeply
    // with longitude; west of it, it declines gently with latitude.
    let field = FnFunction::unit_box("p-wave-velocity", 2, |x| {
        let fault = 0.55 + 0.1 * x[1];
        if x[0] > fault {
            3.2 + 4.0 * (x[0] - fault) - 0.3 * x[1]
        } else {
            3.2 - 0.8 * (fault - x[0]) - 1.2 * x[1]
        }
    });

    let mut rng = seeded(2024);
    println!("materializing 300,000 sensor readings ...");
    let data = Dataset::from_function(
        &field,
        300_000,
        SampleOptions {
            target_noise_std: 0.02,
            normalize_output: false,
            ..Default::default()
        },
        &mut rng,
    );
    let engine = ExactEngine::new(Arc::new(data), AccessPathKind::Grid);

    // Train from a survey campaign's query log. Radii ~ N(0.1, 0.1²):
    // discs covering ≈20% of the region diameter, as in the paper.
    let gen = QueryGenerator::for_function(&field, 0.1);
    let mut cfg = ModelConfig::with_vigilance(2, 0.12);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg).expect("valid config");
    let report = train_from_engine(&mut model, &engine, &gen, 120_000, &mut rng).expect("training");
    println!(
        "survey model trained: {} queries, K = {} regional regimes, converged = {}",
        report.consumed, report.prototypes, report.converged
    );

    // --- The analyst's exploration -------------------------------------
    // A disc straddling the fault: one global line cannot fit (D1), the
    // local list can (D3).
    let straddle = Query::new(vec![0.55, 0.5], 0.2).expect("valid query");
    println!("\n── disc straddling the fault: D(x=[0.55,0.5], θ=0.2) ──");

    let global = engine
        .q2_reg(&straddle.center, straddle.radius)
        .expect("exact REG");
    println!(
        "exact single-plane REG:  u ≈ {:.2} + {:.2}·lon + {:.2}·lat   (CoD = {:.3})",
        global.intercept, global.slope[0], global.slope[1], global.fit.cod
    );

    let s = model.predict_q2(&straddle).expect("prediction");
    println!("LLM list S ({} local models, no data access):", s.len());
    for lm in &s {
        let side = if lm.center[0] > 0.55 + 0.1 * lm.center[1] {
            "east of fault"
        } else {
            "west of fault"
        };
        println!(
            "  around [{:.2},{:.2}] ({side}): u ≈ {:.2} + {:.2}·lon + {:.2}·lat  (weight {:.2})",
            lm.center[0], lm.center[1], lm.intercept, lm.slope[0], lm.slope[1], lm.weight
        );
    }

    // The two regimes have very different longitude slopes (+4.0 east,
    // +0.8 west): check the model separated them.
    // Keep a safety margin from the fault so fault-straddling prototypes
    // (which legitimately blend the regimes) don't pollute the comparison.
    let east_slopes: Vec<f64> = s
        .iter()
        .filter(|lm| lm.center[0] > 0.68 + 0.1 * lm.center[1])
        .map(|lm| lm.slope[0])
        .collect();
    let west_slopes: Vec<f64> = s
        .iter()
        .filter(|lm| lm.center[0] < 0.42 + 0.1 * lm.center[1])
        .map(|lm| lm.slope[0])
        .collect();
    if let (Some(&e), Some(&w)) = (east_slopes.first(), west_slopes.first()) {
        println!(
            "\nregime separation: east lon-slope ≈ {e:.2} (true 4.0), west ≈ {w:.2} (true 0.8)"
        );
    }

    // --- Q1 sweep along a transect -------------------------------------
    println!("\n── mean-velocity transect at lat 0.5, θ = 0.08 ──");
    println!("lon\texact\tLLM\t|err|");
    for i in 1..10 {
        let lon = i as f64 / 10.0;
        let q = Query::new(vec![lon, 0.5], 0.08).expect("valid");
        let exact = engine.q1(&q.center, q.radius).unwrap_or(f64::NAN);
        let pred = model.predict_q1(&q).expect("prediction");
        println!(
            "{lon:.1}\t{exact:.3}\t{pred:.3}\t{:.3}",
            (exact - pred).abs()
        );
    }

    // --- Variance extension: measurement spread per region (E-1) -------
    println!("\n── per-region variance via the moments extension ──");
    let mut mm = MomentsModel::new(ModelConfig::with_vigilance(2, 0.12)).expect("config");
    let mut rng2 = seeded(77);
    for _ in 0..30_000 {
        let q = gen.generate(&mut rng2);
        if let Some(mo) = engine.q1_moments(&q.center, q.radius) {
            let pair = regq::core::moments::MomentPair {
                mean: mo.mean,
                variance: mo.variance,
            };
            if mm.train_step(&q, pair).expect("train") {
                break;
            }
        }
    }
    for (label, x) in [("west", [0.2, 0.5]), ("east", [0.85, 0.5])] {
        let q = Query::new(x.to_vec(), 0.1).expect("valid");
        let p = mm.predict(&q).expect("prediction");
        let exact = engine.q1_moments(&q.center, q.radius).expect("non-empty");
        println!(
            "{label}: predicted mean {:.3} / var {:.4}   exact mean {:.3} / var {:.4}",
            p.mean, p.variance, exact.mean, exact.variance
        );
    }
}
