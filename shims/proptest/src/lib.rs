//! Offline mini-[`proptest`](https://proptest-rs.github.io/proptest/):
//! a small, real property-testing engine exposing exactly the API surface
//! this workspace's `proptest_*.rs` suites use.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; rather than disable the property suites, this shim runs
//! them for real with deterministic seeded generation. Differences from
//! upstream proptest, in decreasing order of importance:
//!
//! * **no shrinking** — a failing case reports its seed and case number
//!   (reproduce by setting `REGQ_PROPTEST_SEED`), not a minimized input;
//! * **deterministic by default** — the per-test seed is derived from the
//!   test name, so CI runs are reproducible; set `REGQ_PROPTEST_SEED` to
//!   explore a different stream;
//! * **regex strategies** support the subset actually used here: literal
//!   chars, `.`, `[...]` classes with ranges, and `{m,n}`/`*`/`+`/`?`
//!   quantifiers.
//!
//! Supported surface: [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//! [`prop_assume!`], [`prop_oneof!`], `ProptestConfig::with_cases`,
//! ranges / tuples / `&str` regexes as strategies,
//! `prop::collection::vec`, [`strategy::Just`], `any::<bool>()`,
//! `prop_map` / `prop_filter`.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The `proptest! { ... }` test-suite macro.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test]` functions whose arguments are drawn from strategies with the
/// `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(stringify!($name), config);
                runner.run(|rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), rng)?;
                    )+
                    let body_result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    body_result
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count as a failure) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
