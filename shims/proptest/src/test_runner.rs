//! Case execution: configuration, the RNG, rejection accounting and
//! failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies (the workspace's deterministic `StdRng`).
pub type TestRng = StdRng;

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` (or strategy error) failed: the property is false.
    Fail(String),
    /// The case was discarded (`prop_assume!` / filter exhaustion); it
    /// does not count toward the executed-case total.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; mirrors the fields of proptest's config that
/// this workspace sets.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected cases (assume/filter) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases (the only constructor the
    /// workspace uses).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Drives one property over `config.cases` generated cases.
pub struct TestRunner {
    name: &'static str,
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Build a runner for the named property.
    ///
    /// The seed is derived from the test name (FNV-1a) so every property
    /// gets a distinct but reproducible stream; `REGQ_PROPTEST_SEED`
    /// overrides the base for exploration and failure reproduction.
    pub fn new(name: &'static str, config: ProptestConfig) -> Self {
        let base_seed = std::env::var("REGQ_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        TestRunner {
            name,
            config,
            base_seed,
        }
    }

    /// Run the property, panicking (as `#[test]` requires) on failure.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut stream = 0u64;
        while passed < self.config.cases {
            let seed = self.base_seed.wrapping_add(stream);
            stream += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many rejected cases ({}) — \
                             weaken the assumptions or widen the filters",
                            self.name, rejected
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}': case {} failed (reproduce with \
                         REGQ_PROPTEST_SEED={}):\n{}",
                        self.name,
                        passed + 1,
                        self.base_seed,
                        msg
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
