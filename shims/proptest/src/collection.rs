//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};
use rand::RngExt;

/// A length specification for collection strategies: a fixed size, an
/// exclusive range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, TestCaseError> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
