//! String generation from a small regex subset.
//!
//! Supports what the workspace's suites use — sequences of atoms, where
//! an atom is a literal character, `.`, or a `[...]` class with ranges,
//! optionally quantified by `{m}`, `{m,n}`, `*`, `+` or `?`. Anchors,
//! groups, alternation and negated classes are *not* supported; using
//! them is a hard error so a drifting test fails loudly instead of
//! silently generating the wrong language.

use crate::test_runner::TestRng;
use rand::RngExt;

/// Upper bound used for the open-ended `*` and `+` quantifiers.
const UNBOUNDED_CAP: usize = 16;

/// Characters `.` draws from: mostly printable ASCII, with a tail of
/// whitespace/unicode so totality properties see multi-byte input.
fn dot_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['\t', '\n', 'é', 'λ', '中', '🦀'];
    if rng.random_range(0usize..8) == 0 {
        EXOTIC[rng.random_range(0..EXOTIC.len())]
    } else {
        char::from(rng.random_range(0x20u32..0x7F) as u8)
    }
}

#[derive(Debug)]
enum Atom {
    Dot,
    Class(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Result<Vec<Piece>, String> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => return Err(format!("unterminated class in {pattern:?}")),
                        Some(']') => break,
                        Some('^') if prev.is_none() && set.is_empty() => {
                            return Err(format!("negated class unsupported in {pattern:?}"))
                        }
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            if lo > hi {
                                return Err(format!("bad range {lo}-{hi} in {pattern:?}"));
                            }
                            // `lo` was already pushed as a literal; extend
                            // with the rest of the range.
                            let mut c = lo;
                            while c < hi {
                                c = char::from_u32(c as u32 + 1)
                                    .ok_or_else(|| format!("bad range in {pattern:?}"))?;
                                set.push(c);
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                if set.is_empty() {
                    return Err(format!("empty class in {pattern:?}"));
                }
                Atom::Class(set)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .ok_or_else(|| format!("trailing backslash in {pattern:?}"))?;
                Atom::Class(vec![esc])
            }
            '(' | ')' | '|' | '^' | '$' => {
                return Err(format!(
                    "regex feature {c:?} unsupported by the offline proptest shim \
                     (pattern {pattern:?})"
                ))
            }
            lit => Atom::Class(vec![lit]),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(ch) => spec.push(ch),
                        None => return Err(format!("unterminated quantifier in {pattern:?}")),
                    }
                }
                let parts: Vec<&str> = spec.split(',').collect();
                let parse_n = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad quantifier {{{spec}}} in {pattern:?}"))
                };
                match parts.as_slice() {
                    [n] => {
                        let n = parse_n(n)?;
                        (n, n)
                    }
                    [m, n] => (parse_n(m)?, parse_n(n)?),
                    _ => return Err(format!("bad quantifier {{{spec}}} in {pattern:?}")),
                }
            }
            _ => (1, 1),
        };
        if min > max {
            return Err(format!("inverted quantifier in {pattern:?}"));
        }
        pieces.push(Piece { atom, min, max });
    }
    Ok(pieces)
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
    let pieces = parse(pattern)?;
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.random_range(piece.min..=piece.max);
        for _ in 0..reps {
            match &piece.atom {
                Atom::Dot => out.push(dot_char(rng)),
                Atom::Class(set) => out.push(set[rng.random_range(0..set.len())]),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let s = generate("[a-zA-Z_][a-zA-Z0-9_]{0,12}", &mut rng).unwrap();
            assert!((1..=13).contains(&s.len()), "len {}", s.len());
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn dot_quantified_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let s = generate(".{0,200}", &mut rng).unwrap();
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn unsupported_features_error() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(generate("(a|b)", &mut rng).is_err());
        assert!(generate("[^a]", &mut rng).is_err());
    }

    #[test]
    fn class_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen_a = false;
        let mut seen_c = false;
        for _ in 0..500 {
            let s = generate("[a-c]", &mut rng).unwrap();
            let ch = s.chars().next().unwrap();
            assert!(('a'..='c').contains(&ch));
            seen_a |= ch == 'a';
            seen_c |= ch == 'c';
        }
        assert!(seen_a && seen_c);
    }
}
