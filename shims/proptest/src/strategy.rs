//! The [`Strategy`] trait and core combinators.

use crate::test_runner::{TestCaseError, TestRng};
use rand::RngExt;

/// How many times a `prop_filter` retries locally before rejecting the
/// whole case back to the runner.
const FILTER_RETRIES: usize = 32;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the runner's RNG. `Err(Reject)` asks
/// the runner to discard the case and try another.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError>;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` labels rejections.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> Result<U, TestCaseError> {
        self.inner.new_value(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, TestCaseError> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.new_value(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(TestCaseError::reject(self.whence))
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the strategies produced by `prop_oneof!`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].new_value(rng)
    }
}

macro_rules! range_strategy {
    (float: $($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(self.start..self.end))
            }
        }
    )*};
    (int: $($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(self.start..self.end))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, TestCaseError> {
                Ok(rng.random_range(*self.start()..=*self.end()))
            }
        }
    )*};
}

range_strategy!(float: f64);
range_strategy!(int: u64, usize, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, TestCaseError> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.new_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

impl Strategy for &'static str {
    type Value = String;
    /// A `&str` strategy is interpreted as a generation *regex*,
    /// matching real proptest. See [`crate::regex`] for the supported
    /// subset.
    fn new_value(&self, rng: &mut TestRng) -> Result<String, TestCaseError> {
        crate::regex::generate(self, rng).map_err(TestCaseError::fail)
    }
}
