//! `any::<T>()` — canonical strategies for plain types.

use crate::strategy::Strategy;
use crate::test_runner::{TestCaseError, TestRng};
use rand::RngExt;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.random::<u64>()
    }
}

impl Arbitrary for f64 {
    /// Finite `f64`s over a wide range (no NaN/inf: the workspace's
    /// properties quantify over finite inputs).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random_range(-1e12..1e12)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(rng))
    }
}
