//! Offline shim for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! parking_lot API (no poisoning, guards returned directly) layered over
//! `std::sync`. Poisoning is converted to a panic propagation — the same
//! observable behavior parking_lot has when a panicking thread held the
//! lock and the protected invariant is broken. See `shims/README.md` for
//! why external crates are shimmed in this build environment.
//!
//! Performance note: `std::sync::Mutex` on Linux is futex-based and
//! uncontended-fast; for the single `scratch: Mutex<Vec<usize>>` in
//! `regq_store::relation` the difference from real parking_lot is noise.

#![deny(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    ///
    /// Unlike `std`, returns the guard directly; a poisoned lock (a writer
    /// panicked) is entered anyway, matching parking_lot's no-poisoning
    /// semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
