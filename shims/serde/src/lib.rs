//! Offline shim for the [`serde`](https://serde.rs) facade.
//!
//! Re-exports the no-op [`Serialize`]/[`Deserialize`] derive macros from
//! the local `serde_derive` shim so `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compile without network access. No
//! trait machinery is provided: nothing in this workspace serializes
//! through serde (model persistence is the hand-rolled text format in
//! `regq_core::persist`). See `shims/README.md`.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
