//! Offline shim for `serde_derive`: the derive macros accept any input
//! and expand to nothing.
//!
//! The workspace's own persistence (`regq_core::persist`) is a hand-rolled
//! versioned text format; the serde derives on model types exist so *host*
//! applications can embed them. In this offline build environment no host
//! ever serializes through serde, so empty expansions keep the annotated
//! sources compiling without pulling in `syn`/`quote` (unavailable
//! offline). See `shims/README.md` for the full shim policy.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
