//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access and no
//! pre-populated cargo registry, so every external dependency is replaced
//! by a local path crate implementing exactly the API surface the
//! workspace uses (see `shims/README.md`). This shim provides:
//!
//! * [`rngs::StdRng`] — a seeded, deterministic generator
//!   (xoshiro256++, seeded via SplitMix64 like the real `rand`'s
//!   `seed_from_u64`);
//! * [`SeedableRng::seed_from_u64`];
//! * the [`Rng`] core trait and the [`RngExt`] extension trait with
//!   `random::<T>()` and `random_range(..)` (the rand 0.9 naming).
//!
//! Determinism is the only contract the workspace relies on: every
//! experiment documents its seed, and `StdRng` here produces the same
//! stream on every platform. The streams are *not* bit-compatible with
//! the real `rand` crate — recorded experiment numbers are tied to this
//! shim.

#![deny(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// Deterministic xoshiro256++ generator, the workspace's standard RNG.
    ///
    /// Matches the real `StdRng`'s role (fast, high-quality, seedable,
    /// not cryptographic-stream-stable across versions).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-number source: a stream of uniform `u64`s.
///
/// All the convenience sampling methods live on [`RngExt`], which is
/// blanket-implemented for every `Rng` (including unsized `R: Rng +
/// ?Sized` receivers behind `&mut`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain via `random::<T>()`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `random_range`.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire-style rejection to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u64, usize, u32, i64, i32);

/// Extension methods every [`Rng`] gets for free (rand 0.9 naming).
pub trait RngExt: Rng {
    /// One draw of `T` over its standard distribution
    /// (`f64` → uniform `[0, 1)`, integers → full domain, `bool` → fair).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// One draw uniform over `range`. Panics on an empty range.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&v));
            let i = r.random_range(0usize..7);
            assert!(i < 7);
            let j = r.random_range(0..=4usize);
            assert!(j <= 4);
        }
    }

    #[test]
    fn range_sampling_is_not_constant() {
        let mut r = StdRng::seed_from_u64(3);
        let vals: Vec<usize> = (0..100).map(|_| r.random_range(0usize..10)).collect();
        assert!(vals.iter().any(|&v| v != vals[0]));
    }
}
