//! Offline shim for [criterion.rs](https://bheisler.github.io/criterion.rs/book/):
//! a minimal wall-clock micro-benchmark harness exposing the API surface
//! the `regq_bench` Criterion benches use (`benchmark_group`,
//! `bench_function`, `BenchmarkId`, `Bencher::iter`, `sample_size`, and
//! the `criterion_group!`/`criterion_main!` macros).
//!
//! Differences from real criterion: no statistical outlier analysis, no
//! HTML reports, no baseline comparison — each benchmark is calibrated to
//! a target measurement time, sampled `sample_size` times, and reported
//! as `median / mean ± stddev` per iteration on stdout. Under
//! `cargo test` (criterion's `--test` flag) every benchmark body runs
//! exactly once so the benches stay compile- and run-checked in CI
//! without burning minutes. See `shims/README.md` for the shim policy.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub use std::hint::black_box;

/// Target cumulative measurement time per benchmark (split across samples).
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// Top-level harness state, handed to every `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench/test pass `--bench`/`--test` plus an optional name
        // filter; unknown flags are ignored for drop-in compatibility.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// Print the trailing summary (no-op in this shim; kept for API shape).
    pub fn final_summary(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, matching criterion's display.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { id: s.into() }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, criterion-style: calibrate iterations per sample,
    /// then collect `sample_size` timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibration: find an iteration count that makes one sample take
        // roughly TARGET_MEASURE / sample_size.
        let target_sample = TARGET_MEASURE.as_secs_f64() / self.sample_size as f64;
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed > 1e-4 || iters >= 1 << 20 {
                break elapsed / iters as f64;
            }
            iters *= 8;
        };
        let iters_per_sample = ((target_sample / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name}: ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (sorted.len() - 1).max(1) as f64;
        println!(
            "{name}: median {} mean {} ± {}  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(var.sqrt()),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into one group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("q1", "small").id, "q1/small");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
