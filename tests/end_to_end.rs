//! End-to-end integration tests: the full Fig.-2 pipeline — dataset →
//! exact engine → analyst workload → model training → zero-data-access
//! prediction — with accuracy assertions against ground truth.

use regq::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

/// Shared non-linear fixture (expensive: 40k rows + training to Γ ≤ γ).
fn nonlinear_fixture() -> &'static (ExactEngine, QueryGenerator, LlmModel) {
    static FIX: OnceLock<(ExactEngine, QueryGenerator, LlmModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let field = GasSensorSurrogate::new(2, 42);
        let mut rng = seeded(1);
        let data = Dataset::from_function(&field, 40_000, SampleOptions::default(), &mut rng);
        let engine = ExactEngine::new(Arc::new(data), AccessPathKind::KdTree);
        let gen = QueryGenerator::for_function(&field, 0.1);
        let mut cfg = ModelConfig::with_vigilance(2, 0.12);
        // γ = 5e-3: deep enough for accurate slopes, shallow enough that
        // the slope head's slower (p = 0.6) Γ_H decay crosses it within
        // this workload (see D-7/D-8 in DESIGN.md).
        cfg.gamma = 5e-3;
        let mut model = LlmModel::new(cfg).unwrap();
        let report = train_from_engine(&mut model, &engine, &gen, 120_000, &mut rng).unwrap();
        assert!(report.converged, "fixture must converge");
        (engine, gen, model)
    })
}

#[test]
fn pipeline_converges_and_predicts_q1_accurately() {
    let (engine, gen, model) = nonlinear_fixture();
    let mut rng = seeded(100);
    let eval = evaluate_q1(model, engine, gen, 2_000, &mut rng);
    // The data is scaled to [0,1]; a useful model must be well under the
    // trivial predict-the-global-mean error (~0.15 on this surface).
    assert!(eval.rmse < 0.09, "Q1 RMSE too high: {}", eval.rmse);
    assert!(eval.n > 1_500);
}

#[test]
fn q2_local_models_beat_global_reg_on_nonlinear_data() {
    let (engine, gen, model) = nonlinear_fixture();
    let mut rng = seeded(101);
    let eval = evaluate_q2(model, engine, gen, 400, None, &mut rng);
    assert!(eval.n > 50);
    // Per-query FVU has an unbounded heavy upper tail (near-constant
    // subspaces blow the ratio up for every method), so the ordering is
    // asserted on medians, as the evaluator documents. 400 probes keep
    // the median estimates stable: at 100 the two medians sat within
    // 1% of each other (2.616 vs 2.635) and a benign change could flip
    // the ordering; at 400 the gap is ~18% (2.42 vs 2.85).
    eprintln!(
        "llm mean {} median {} | reg mean {} median {}",
        eval.llm_fvu, eval.llm_fvu_median, eval.reg_global_fvu, eval.reg_global_fvu_median
    );
    assert!(
        eval.llm_fvu_median < eval.reg_global_fvu_median,
        "LLM median FVU {} must beat global REG {}",
        eval.llm_fvu_median,
        eval.reg_global_fvu_median
    );
    // The returned lists are non-trivial on overlapping subspaces.
    assert!(eval.avg_s_len >= 1.0);
}

#[test]
fn prediction_requires_no_data_access_and_is_fast() {
    let (engine, gen, model) = nonlinear_fixture();
    let mut rng = seeded(102);
    let queries = gen.generate_many(200, &mut rng);
    let llm = time_q1_llm(model, &queries);
    let exact = time_q1_exact(engine, &queries);
    // The engine holds 40k rows behind a kd-tree; even so, the model-side
    // answer must be decisively faster on average.
    assert!(
        llm.mean() < exact.mean(),
        "LLM {:?} not faster than exact {:?}",
        llm.mean(),
        exact.mean()
    );
}

#[test]
fn model_scales_independently_of_data_size() {
    // Train once, then time predictions — they cannot depend on the
    // relation size because prediction never touches the relation.
    let (_, gen, model) = nonlinear_fixture();
    let mut rng = seeded(103);
    let queries = gen.generate_many(500, &mut rng);
    let t = time_q1_llm(model, &queries);
    // O(dK) per query: sub-10µs each even in CI noise.
    assert!(
        t.mean().as_micros() < 200,
        "prediction latency {:?} suspiciously high",
        t.mean()
    );
}

#[test]
fn exact_q1_equals_manual_average_through_all_access_paths() {
    let field = Saddle2d;
    let mut rng = seeded(3);
    let data = Arc::new(Dataset::from_function(
        &field,
        5_000,
        SampleOptions {
            normalize_output: false,
            ..Default::default()
        },
        &mut rng,
    ));
    for path in [
        AccessPathKind::Scan,
        AccessPathKind::KdTree,
        AccessPathKind::Grid,
    ] {
        let engine = ExactEngine::new(data.clone(), path);
        let ids = engine.select(&[0.2, -0.3], 0.5);
        let manual: f64 = ids.iter().map(|&i| data.y(i)).sum::<f64>() / ids.len() as f64;
        let q1 = engine.q1(&[0.2, -0.3], 0.5).unwrap();
        assert!((q1 - manual).abs() < 1e-12, "path {path:?}");
    }
}

#[test]
fn linear_world_sanity_all_three_engines_agree() {
    // On exactly linear data every method must recover the plane.
    let field =
        regq::data::function::FnFunction::unit_box("plane", 2, |x| 1.0 + 2.0 * x[0] - 3.0 * x[1]);
    let mut rng = seeded(4);
    let data = Arc::new(Dataset::from_function(
        &field,
        20_000,
        SampleOptions {
            normalize_output: false,
            ..Default::default()
        },
        &mut rng,
    ));
    let engine = ExactEngine::new(data, AccessPathKind::KdTree);

    // Global REG: exact coefficients.
    let reg = engine.global_reg().unwrap();
    assert!((reg.intercept - 1.0).abs() < 1e-6);
    assert!((reg.slope[0] - 2.0).abs() < 1e-6);
    assert!((reg.slope[1] + 3.0).abs() < 1e-6);

    // Per-query PLR: FVU ~ 0 (a line is a trivial spline).
    let plr = engine
        .q2_plr(&[0.5, 0.5], 0.3, MarsParams::default())
        .unwrap();
    assert!(plr.fit.fvu < 1e-9);

    // The trained model's Q2 list recovers the same plane locally.
    let gen = QueryGenerator::for_function(&field, 0.1);
    let mut cfg = ModelConfig::with_vigilance(2, 0.12);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg).unwrap();
    train_from_engine(&mut model, &engine, &gen, 60_000, &mut rng).unwrap();
    let s = model
        .predict_q2(&Query::new(vec![0.5, 0.5], 0.2).unwrap())
        .unwrap();
    // Score the returned list by overlap weight: low-weight members may be
    // young prototypes with immature coefficients, which is expected; the
    // weighted answer is what the algorithm stands behind.
    let weighted_err: f64 = s
        .iter()
        .map(|lm| {
            let at_center = lm.predict(&lm.center);
            let truth = 1.0 + 2.0 * lm.center[0] - 3.0 * lm.center[1];
            lm.weight * (at_center - truth).abs()
        })
        .sum();
    assert!(
        weighted_err < 0.1,
        "weighted local-model error {weighted_err}"
    );
}

#[test]
fn trained_model_survives_persistence_round_trip() {
    let (_, gen, model) = nonlinear_fixture();
    let path = std::env::temp_dir().join(format!("regq-e2e-{}.model", std::process::id()));
    regq::core::persist::save_model(model, &path).unwrap();
    let restored = regq::core::persist::load_model(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut rng = seeded(105);
    for q in gen.generate_many(100, &mut rng) {
        assert_eq!(
            model.predict_q1(&q).unwrap(),
            restored.predict_q1(&q).unwrap()
        );
    }
}

#[test]
fn empty_and_tiny_subspaces_are_handled_gracefully() {
    let (engine, _, model) = nonlinear_fixture();
    // Far outside the data domain: the exact engine returns None, the
    // model extrapolates (finite), never panics.
    let far = Query::new(vec![50.0, 50.0], 0.01).unwrap();
    assert!(engine.q1(&far.center, far.radius).is_none());
    assert!(model.predict_q1(&far).unwrap().is_finite());
    assert_eq!(model.predict_q2(&far).unwrap().len(), 1);
}
