//! Integration tests for the paper's future-work extensions implemented in
//! this reproduction: moments (E-1), drift adaptation (E-2), compaction
//! (E-3), confidence scoring (E-4 / desideratum D2).

use regq::core::adapt::{enable_drift_tracking, prune_rare_prototypes};
use regq::core::moments::{MomentPair, MomentsModel};
use regq::prelude::*;
use std::sync::Arc;

fn build_engine(seed: u64, shift: f64, n: usize) -> (ExactEngine, GasSensorSurrogate) {
    let field = GasSensorSurrogate::new(2, 33);
    let mut rng = seeded(seed);
    let base = Dataset::from_function(
        &field,
        n,
        SampleOptions {
            normalize_output: false,
            ..Default::default()
        },
        &mut rng,
    );
    let data = if shift == 0.0 {
        base
    } else {
        let mut shifted = Dataset::new(2);
        for (x, u) in base.iter() {
            shifted.push(x, u + shift).unwrap();
        }
        shifted
    };
    (
        ExactEngine::new(Arc::new(data), AccessPathKind::KdTree),
        field,
    )
}

#[test]
fn moments_model_tracks_conditional_mean_and_variance() {
    let (engine, field) = build_engine(1, 0.0, 30_000);
    let gen = QueryGenerator::for_function(&field, 0.15);
    let mut cfg = ModelConfig::with_vigilance(2, 0.15);
    cfg.gamma = 1e-3;
    let mut mm = MomentsModel::new(cfg).unwrap();
    let mut rng = seeded(2);
    for _ in 0..50_000 {
        let q = gen.generate(&mut rng);
        if let Some(mo) = engine.q1_moments(&q.center, q.radius) {
            if mm
                .train_step(
                    &q,
                    MomentPair {
                        mean: mo.mean,
                        variance: mo.variance,
                    },
                )
                .unwrap()
            {
                break;
            }
        }
    }
    // Score on unseen queries.
    let mut mean_err = regq::core::metrics::RmseAccumulator::new();
    let mut var_err = regq::core::metrics::RmseAccumulator::new();
    let mut exact_means = regq::linalg::OnlineStats::new();
    let mut var_scale = 0.0;
    let mut n = 0;
    for q in gen.generate_many(500, &mut seeded(3)) {
        let Some(exact) = engine.q1_moments(&q.center, q.radius) else {
            continue;
        };
        let p = mm.predict(&q).unwrap();
        mean_err.push(exact.mean, p.mean);
        var_err.push(exact.variance, p.variance);
        exact_means.push(exact.mean);
        var_scale += exact.variance;
        n += 1;
    }
    assert!(n > 300);
    // The output here is *unnormalized*, so score the mean head against the
    // spread of the true conditional means: a trivial predict-the-average
    // model would score ~1.0 on this ratio. The 0.5 budget is not thin —
    // the pinned seeds land at RMSE ≈ 0.185 against a spread of ≈ 1.02
    // (ratio ≈ 0.18, ~2.8× headroom) — it is set at half the trivial
    // model's score so only a qualitative regression of the mean head
    // trips it, not evaluation noise.
    let spread = exact_means.variance().sqrt();
    eprintln!("mean RMSE {} spread {}", mean_err.rmse().unwrap(), spread);
    assert!(
        mean_err.rmse().unwrap() < 0.5 * spread,
        "mean RMSE {} vs conditional-mean spread {}",
        mean_err.rmse().unwrap(),
        spread
    );
    // Variance predictions track the scale of the true variances.
    let avg_var = var_scale / n as f64;
    assert!(
        var_err.rmse().unwrap() < avg_var,
        "variance RMSE {} vs mean variance {}",
        var_err.rmse().unwrap(),
        avg_var
    );
}

#[test]
fn drift_tracking_beats_frozen_model_after_shift() {
    let (engine, field) = build_engine(4, 0.0, 25_000);
    let gen = QueryGenerator::for_function(&field, 0.12);
    let mut cfg = ModelConfig::with_vigilance(2, 0.2);
    cfg.gamma = 2e-3;
    let mut model = LlmModel::new(cfg).unwrap();
    let mut rng = seeded(5);
    train_from_engine(&mut model, &engine, &gen, 60_000, &mut rng).unwrap();

    // The world shifts by +0.4.
    let (shifted_engine, _) = build_engine(6, 0.4, 25_000);
    let frozen = model.clone();
    enable_drift_tracking(&mut model, 0.2);
    for _ in 0..8_000 {
        let q = gen.generate(&mut rng);
        if let Some(y) = shifted_engine.q1(&q.center, q.radius) {
            model.train_step(&q, y).unwrap();
        }
    }
    let frozen_eval = evaluate_q1(&frozen, &shifted_engine, &gen, 1_000, &mut rng);
    let adapted_eval = evaluate_q1(&model, &shifted_engine, &gen, 1_000, &mut rng);
    // The frozen model carries the full +0.4 bias; the adapted one must
    // recover most of it.
    assert!(frozen_eval.rmse > 0.3, "frozen rmse {}", frozen_eval.rmse);
    assert!(
        adapted_eval.rmse < frozen_eval.rmse / 2.0,
        "adapted {} vs frozen {}",
        adapted_eval.rmse,
        frozen_eval.rmse
    );
}

#[test]
fn pruning_keeps_serving_quality() {
    let (engine, field) = build_engine(7, 0.0, 25_000);
    let gen = QueryGenerator::for_function(&field, 0.12);
    let mut cfg = ModelConfig::with_vigilance(2, 0.1);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg).unwrap();
    let mut rng = seeded(8);
    train_from_engine(&mut model, &engine, &gen, 60_000, &mut rng).unwrap();

    let before = evaluate_q1(&model, &engine, &gen, 1_500, &mut rng);
    let pruned = prune_rare_prototypes(&mut model, 3);
    let after = evaluate_q1(&model, &engine, &gen, 1_500, &mut rng);
    // Dropping under-trained prototypes must not blow up accuracy.
    assert!(
        after.rmse < before.rmse * 1.5 + 0.02,
        "pruning {pruned} prototypes hurt: {} -> {}",
        before.rmse,
        after.rmse
    );
}

#[test]
fn confidence_routes_extrapolations_to_the_engine() {
    let (engine, field) = build_engine(9, 0.0, 25_000);
    let gen = QueryGenerator::for_function(&field, 0.12);
    let mut cfg = ModelConfig::with_vigilance(2, 0.15);
    cfg.gamma = 1e-3;
    let mut model = LlmModel::new(cfg).unwrap();
    let mut rng = seeded(10);
    train_from_engine(&mut model, &engine, &gen, 60_000, &mut rng).unwrap();

    // In-distribution queries score high; far-away balls score low — the
    // signal a serving layer uses to fall back to exact execution.
    let mut in_dist_scores = Vec::new();
    for q in gen.generate_many(200, &mut rng) {
        in_dist_scores.push(model.confidence(&q).unwrap().score);
    }
    let median = {
        let mut s = in_dist_scores.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let far = model
        .confidence(&Query::new(vec![40.0, -25.0], 0.1).unwrap())
        .unwrap();
    assert!(median > 0.3, "in-distribution median score {median}");
    assert!(
        far.score < median / 2.0,
        "far score {} median {median}",
        far.score
    );
    assert_eq!(far.overlap_mass, 0.0);
}
