//! Integration tests pinning the paper's *qualitative* claims — the
//! directions and orderings its figures report. These are the assertions
//! that make the reproduction falsifiable without requiring the authors'
//! exact hardware or datasets.

use regq::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

struct Fixture {
    engine: ExactEngine,
    gen: QueryGenerator,
    field: GasSensorSurrogate,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let field = GasSensorSurrogate::new(2, 7);
        let mut rng = seeded(11);
        // Measurement noise mirrors the paper's setup (both its datasets
        // carry Gaussian noise) and keeps subspace TSS away from zero so
        // FVU ratios stay well conditioned.
        let opts = SampleOptions {
            target_noise_std: 0.05,
            ..Default::default()
        };
        let data = Dataset::from_function(&field, 40_000, opts, &mut rng);
        Fixture {
            engine: ExactEngine::new(Arc::new(data), AccessPathKind::KdTree),
            // The paper's R1 workload: θ ~ N(0.1, 0.1²) over a unit-range
            // domain (balls covering ≈20% of the range in diameter).
            gen: QueryGenerator::for_function(&field, 0.1),
            field,
        }
    })
}

fn train(a: f64, gamma: f64, seed: u64) -> (LlmModel, StreamReport) {
    let f = fixture();
    let mut cfg = ModelConfig::with_vigilance(2, a);
    cfg.gamma = gamma;
    let mut model = LlmModel::new(cfg).unwrap();
    let mut rng = seeded(seed);
    let report = train_from_engine(&mut model, &f.engine, &f.gen, 100_000, &mut rng).unwrap();
    (model, report)
}

/// Fig. 10 (right): the prototype count K decreases monotonically as the
/// vigilance coefficient a grows.
#[test]
fn fig10_k_decreases_with_vigilance_coefficient() {
    let ks: Vec<usize> = [0.05, 0.1, 0.25, 0.5]
        .iter()
        .map(|&a| train(a, 1e-2, 21).0.k())
        .collect();
    for w in ks.windows(2) {
        assert!(w[0] >= w[1], "K not monotone: {ks:?}");
    }
    assert!(ks[0] > ks[3], "vigilance sweep had no effect: {ks:?}");
}

/// Fig. 7: Q1 RMSE grows as a → 1 (coarser quantization).
#[test]
fn fig7_rmse_grows_with_vigilance_coefficient() {
    let f = fixture();
    let mut rng = seeded(22);
    let fine = {
        let (m, _) = train(0.08, 1e-3, 22);
        evaluate_q1(&m, &f.engine, &f.gen, 1_500, &mut rng).rmse
    };
    let coarse = {
        let (m, _) = train(0.9, 1e-3, 22);
        evaluate_q1(&m, &f.engine, &f.gen, 1_500, &mut rng).rmse
    };
    assert!(
        fine < coarse,
        "fine quantization ({fine}) must beat coarse ({coarse})"
    );
}

/// Fig. 8: Q1 RMSE is stable in the test-set size |V| (the model is fixed;
/// more test queries only tighten the estimate).
#[test]
fn fig8_rmse_stable_in_test_size() {
    let f = fixture();
    let (m, _) = train(0.12, 1e-3, 23);
    let mut rng = seeded(23);
    let small = evaluate_q1(&m, &f.engine, &f.gen, 1_000, &mut rng).rmse;
    let large = evaluate_q1(&m, &f.engine, &f.gen, 8_000, &mut rng).rmse;
    let rel = (small - large).abs() / large.max(1e-9);
    assert!(rel < 0.25, "RMSE unstable in |V|: {small} vs {large}");
}

/// Fig. 9: FVU ordering PLR ≤ LLM < global REG on non-linear data, and
/// LLM's FVU approaches REG's as a → 1 (one LLM = one global line).
#[test]
fn fig9_fvu_ordering_and_limit() {
    let f = fixture();
    let mut rng = seeded(24);
    let plr_params = MarsParams {
        max_terms: 9,
        max_knots_per_dim: 8,
        ..Default::default()
    };
    // Per-query FVU is heavy-tailed (ratio statistic), so the orderings
    // are asserted on medians — see Q2Eval docs.
    let (fine, _) = train(0.1, 1e-3, 24);
    let fine_eval = evaluate_q2(&fine, &f.engine, &f.gen, 120, Some(plr_params), &mut rng);
    assert!(
        fine_eval.plr_fvu_median.unwrap() <= fine_eval.llm_fvu_median + 0.05,
        "PLR {} vs LLM {}",
        fine_eval.plr_fvu_median.unwrap(),
        fine_eval.llm_fvu_median
    );
    assert!(
        fine_eval.llm_fvu_median < fine_eval.reg_global_fvu_median,
        "LLM {} vs REG {}",
        fine_eval.llm_fvu_median,
        fine_eval.reg_global_fvu_median
    );

    let (coarse, _) = train(1.0, 1e-3, 24);
    assert_eq!(coarse.k(), 1, "a = 1 must yield a single prototype");
    let coarse_eval = evaluate_q2(&coarse, &f.engine, &f.gen, 120, None, &mut rng);
    // One LLM behaves like one global line: FVU within the REG band, and
    // clearly worse than the fine model.
    assert!(
        coarse_eval.llm_fvu_median > fine_eval.llm_fvu_median,
        "coarse {} should be worse than fine {}",
        coarse_eval.llm_fvu_median,
        fine_eval.llm_fvu_median
    );
}

/// Fig. 11: data-value prediction — LLM (no data access) beats the global
/// REG; PLR (full data access, per-query fit) is best.
#[test]
fn fig11_data_value_ordering() {
    let f = fixture();
    let (m, _) = train(0.1, 1e-3, 25);
    let mut rng = seeded(25);
    let eval = evaluate_data_values(
        &m,
        &f.engine,
        &f.gen,
        120,
        20,
        Some(MarsParams {
            max_terms: 9,
            max_knots_per_dim: 8,
            ..Default::default()
        }),
        &mut rng,
    );
    assert!(eval.rmse_llm < eval.rmse_reg_global);
    assert!(eval.rmse_plr.unwrap() < eval.rmse_reg_global);
}

/// Fig. 12: after training, model-side execution is independent of the
/// data size while exact execution grows with it.
#[test]
fn fig12_scalability_shape() {
    let field = &fixture().field;
    let gen = &fixture().gen;
    let mut rng = seeded(26);
    let queries = gen.generate_many(100, &mut rng);

    // One trained model (what it was trained on is irrelevant for timing).
    let (model, _) = train(0.25, 1e-2, 26);

    let mut exact_means = Vec::new();
    let mut llm_means = Vec::new();
    for n in [5_000usize, 50_000, 200_000] {
        let mut rng2 = seeded(27);
        let data = Dataset::from_function(field, n, SampleOptions::default(), &mut rng2);
        let engine = ExactEngine::new(Arc::new(data), AccessPathKind::Scan);
        exact_means.push(time_q1_exact(&engine, &queries).mean().as_secs_f64());
        llm_means.push(time_q1_llm(&model, &queries).mean().as_secs_f64());
    }
    // Exact grows roughly linearly across 40x data growth.
    assert!(
        exact_means[2] > exact_means[0] * 5.0,
        "exact timing did not grow: {exact_means:?}"
    );
    // Model latency is flat (allow generous noise).
    let (lo, hi) = (
        llm_means.iter().cloned().fold(f64::INFINITY, f64::min),
        llm_means.iter().cloned().fold(0.0, f64::max),
    );
    assert!(hi < lo * 20.0, "LLM timing not flat: {llm_means:?}");
    // And the separation at the largest size is at least 10x.
    assert!(
        exact_means[2] > llm_means[2] * 10.0,
        "speedup too small: exact {} vs llm {}",
        exact_means[2],
        llm_means[2]
    );
}

/// Fig. 13: larger mean radius µ_θ → lower Q1 RMSE (answers concentrate
/// around the global mean) and fewer training pairs to converge.
#[test]
fn fig13_radius_tradeoff_direction() {
    let f = fixture();
    let mut rng = seeded(28);

    // The paper's µ_θ sweep keeps the radius *variance* fixed (σ² = 0.01)
    // while the mean moves — only the mean is the experimental variable.
    let gen_with = |mu: f64| QueryGenerator::for_function(&f.field, 0.1).with_theta(mu, 0.1);
    let train_with_theta = |mu: f64, seed: u64| -> (LlmModel, StreamReport) {
        let gen = gen_with(mu);
        let mut cfg = ModelConfig::with_vigilance(2, 0.25);
        cfg.gamma = 1e-2;
        let mut model = LlmModel::new(cfg).unwrap();
        let mut rng = seeded(seed);
        let report = train_from_engine(&mut model, &f.engine, &gen, 100_000, &mut rng).unwrap();
        (model, report)
    };

    let (m_small, r_small) = train_with_theta(0.05, 30);
    let (m_large, r_large) = train_with_theta(0.45, 30);

    let gen_small = gen_with(0.05);
    let gen_large = gen_with(0.45);
    let e_small = evaluate_q1(&m_small, &f.engine, &gen_small, 1_500, &mut rng).rmse;
    let e_large = evaluate_q1(&m_large, &f.engine, &gen_large, 1_500, &mut rng).rmse;

    assert!(
        e_large < e_small,
        "large radii should be easier: {e_large} vs {e_small}"
    );
    assert!(
        r_large.consumed <= r_small.consumed,
        "large radii should converge in fewer pairs: {} vs {}",
        r_large.consumed,
        r_small.consumed
    );
}

/// §VI-B: training wall-clock is dominated by query execution, not model
/// updates.
#[test]
fn training_cost_breakdown_matches_paper_shape() {
    let (_, report) = train(0.25, 1e-2, 31);
    assert!(
        report.query_time_fraction() > 0.5,
        "query execution fraction {}",
        report.query_time_fraction()
    );
}
