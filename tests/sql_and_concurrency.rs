//! Integration tests for the declarative front end and concurrent serving
//! through the facade crate: the SQL surface (`USING EXACT | MODEL |
//! AUTO`), the train/serve snapshot split, the lock-free serving engine
//! under live training, and the sharded fabric's battery — shard
//! bit-identity (proptest), scripted epoch-reclamation interleavings, and
//! counted feedback drops surfacing on query outputs. The
//! [`fault_injection`] battery drives deterministic seeded faults
//! (trainer panics, lock poisoning, queue-overflow bursts, publish
//! stalls, deadline pressure) through the same facade and proves each
//! class recovers with zero wrong answers: non-degraded routes stay
//! bit-identical to a fault-free twin and degraded serves are always
//! flagged.
//!
//! Property-based suites here run on the in-tree proptest shim: failures
//! print a `REGQ_PROPTEST_SEED=<seed>` repro line.

use regq::core::moments::{MomentPair, MomentsModel};
use regq::prelude::*;
use regq::sql::{Session, SqlError};
use std::sync::Arc;
use std::sync::OnceLock;

struct Fix {
    session: Session,
    model: LlmModel,
    engine_rows: usize,
}

fn fixture() -> &'static Fix {
    static FIX: OnceLock<Fix> = OnceLock::new();
    FIX.get_or_init(|| {
        let field = GasSensorSurrogate::new(2, 21);
        let mut rng = seeded(2);
        let ds = Dataset::from_function(&field, 30_000, SampleOptions::default(), &mut rng);
        let rows = ds.len();
        let engine = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);
        let gen = QueryGenerator::for_function(&field, 0.1);

        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
        cfg.gamma = 1e-3;
        let mut model = LlmModel::new(cfg.clone()).unwrap();
        let mut moments = MomentsModel::new(cfg).unwrap();
        for _ in 0..50_000 {
            let q = gen.generate(&mut rng);
            if let Some(mo) = engine.q1_moments(&q.center, q.radius) {
                let a = model.train_step(&q, mo.mean).unwrap().converged;
                let b = moments
                    .train_step(
                        &q,
                        MomentPair {
                            mean: mo.mean,
                            variance: mo.variance,
                        },
                    )
                    .unwrap();
                if a && b {
                    break;
                }
            }
        }

        let mut session = Session::new();
        session.register_table("readings", engine);
        session.register_model("readings", model.clone()).unwrap();
        session.register_moments_model("readings", moments).unwrap();
        Fix {
            session,
            model,
            engine_rows: rows,
        }
    })
}

#[test]
fn sql_exact_and_model_answers_agree() {
    let f = fixture();
    let exact = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.15")
        .unwrap();
    let served = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.15 USING MODEL")
        .unwrap();
    let (e, m) = (
        exact.scalar().expect("scalar"),
        served.scalar().expect("scalar"),
    );
    assert!((e - m).abs() < 0.12, "exact {e} vs model {m}");
    assert_eq!(exact.route, Route::Exact);
    assert_eq!(served.route, Route::Model);
}

#[test]
fn sql_linreg_list_is_weight_normalized() {
    let f = fixture();
    let out = f
        .session
        .execute("SELECT LINREG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2 USING MODEL")
        .unwrap();
    let list = out.regression().expect("regression list");
    assert!(!list.is_empty());
    let wsum: f64 = list.iter().map(|m| m.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-9);
}

#[test]
fn sql_count_matches_engine_row_semantics() {
    let f = fixture();
    let n = f
        .session
        .execute("SELECT COUNT(*) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 10.0")
        .unwrap()
        .count()
        .expect("count");
    assert_eq!(n, f.engine_rows, "whole-domain ball must count every row");
}

#[test]
fn sql_errors_are_structured() {
    let f = fixture();
    assert!(matches!(
        f.session
            .execute("SELECT AVG(u) FROM nope WHERE DIST(x, [0.5, 0.5]) <= 0.1"),
        Err(SqlError::UnknownTable(_))
    ));
    assert!(matches!(
        f.session.execute("this is not sql"),
        Err(SqlError::Parse(_))
    ));
    // source() threads the cause for structured error reporting.
    use std::error::Error as _;
    let err = f.session.execute("this is not sql").unwrap_err();
    assert!(err.source().is_some());
}

#[test]
fn sql_auto_mode_gates_on_confidence_end_to_end() {
    let f = fixture();
    // Far-but-data-rich ball: the snapshot is consulted, doubts itself,
    // and the exact engine answers — with the score reported.
    let low = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [40.0, 40.0]) <= 60.0 USING AUTO")
        .unwrap();
    assert_eq!(low.route, Route::Exact);
    assert!(low.confidence.is_some(), "snapshot must be consulted");
    let exact = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [40.0, 40.0]) <= 60.0")
        .unwrap();
    assert_eq!(low.scalar().unwrap(), exact.scalar().unwrap());

    // At a mature prototype's own subspace the gate clears and the model
    // serves with zero data access.
    let router = f.session.router("readings").unwrap();
    let protos = router.merged_model().unwrap().prototypes();
    let p = protos.iter().max_by_key(|p| p.updates).unwrap();
    let sql = format!(
        "SELECT AVG(u) FROM readings WHERE DIST(x, [{}, {}]) <= {} USING AUTO",
        p.center[0], p.center[1], p.radius
    );
    let high = f.session.execute(&sql).unwrap();
    assert_eq!(high.route, Route::Model, "score {:?}", high.confidence);
    assert!(high.confidence.unwrap() >= 0.3);
    assert!(high.scalar().unwrap().is_finite());
    assert!(high.snapshot_version.is_some());
}

#[test]
fn sql_auto_mode_serves_concurrently_from_one_session() {
    let f = fixture();
    let statements = [
        "SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.15 USING AUTO",
        "SELECT AVG(u) FROM readings WHERE DIST(x, [0.2, 0.8]) <= 0.1 USING AUTO",
        "SELECT LINREG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2 USING AUTO",
        "SELECT VAR(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2 USING AUTO",
    ];
    let reference: Vec<_> = statements
        .iter()
        .map(|s| f.session.execute(s).unwrap())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    statements
                        .iter()
                        .map(|s| f.session.execute(s).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // The fixture's model is converged (frozen trainer), so the
            // published snapshot is stable and answers are deterministic
            // across threads, routes included.
            assert_eq!(h.join().unwrap(), reference);
        }
    });
}

#[test]
fn frozen_model_serves_concurrently_with_identical_answers() {
    let f = fixture();
    let model = &f.model;
    let gen = QueryGenerator::new(vec![(0.0, 1.0); 2], 0.1, 0.05, 1.0);
    let mut rng = seeded(7);
    let queries = gen.generate_many(512, &mut rng);
    let reference: Vec<f64> = queries
        .iter()
        .map(|q| model.predict_q1(q).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    queries
                        .iter()
                        .map(|q| model.predict_q1(q).unwrap())
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference);
        }
    });
}

#[test]
fn parallel_serving_throughput_beats_exact() {
    use regq::workload::{exact_q1_throughput, model_q1_throughput};
    let f = fixture();
    let field = GasSensorSurrogate::new(2, 21);
    let mut rng = seeded(9);
    let ds = Dataset::from_function(&field, 30_000, SampleOptions::default(), &mut rng);
    let engine = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);
    let gen = QueryGenerator::for_function(&field, 0.1);
    let queries = gen.generate_many(2_000, &mut rng);
    let m = model_q1_throughput(&f.model, &queries, 4);
    let e = exact_q1_throughput(&engine, &queries, 4);
    assert!(
        m.qps() > 3.0 * e.qps(),
        "model {} qps vs exact {} qps",
        m.qps(),
        e.qps()
    );
}

#[test]
fn closed_loop_serving_exercises_both_routes_under_live_training() {
    use regq::workload::serve_closed_loop;
    let field = GasSensorSurrogate::new(2, 33);
    let mut rng = seeded(11);
    let ds = Dataset::from_function(&field, 20_000, SampleOptions::default(), &mut rng);
    let exact = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);
    let engine = ServeEngine::with_model(
        exact,
        LlmModel::new(ModelConfig::with_vigilance(2, 0.08)).unwrap(),
        RoutePolicy {
            confidence_threshold: 0.3,
            feedback: true,
            publish_interval: 64,
            ..RoutePolicy::default()
        },
    );
    let gen = QueryGenerator::for_function(&field, 0.1);
    let reader_queries = gen.generate_many(3_000, &mut rng);
    let writer_queries = gen.generate_many(20_000, &mut rng);
    let r = serve_closed_loop(&engine, &reader_queries, 4, &writer_queries);
    assert_eq!(r.queries, 3_000);
    assert!(r.exact_served > 0, "a fresh engine must fall back at first");
    assert!(
        r.feedback_fed > 0,
        "the closed loop must train from fallbacks/writer"
    );
    assert!(r.publishes >= 1, "the trainer must republish mid-run");
    let stats = engine.stats();
    assert_eq!(
        stats.model_served + stats.exact_served,
        r.model_served + r.exact_served
    );
}

mod snapshot_equivalence {
    //! Proptest: `ServingSnapshot` predictions are **bit-identical** to
    //! the mutable `LlmModel` at every publish point, observed from any
    //! number of reader threads (the invariant that makes lock-free
    //! serving sound: a published snapshot is the model, frozen in time).

    use proptest::prelude::*;
    use regq::core::snapshot::ServingSnapshot;
    use regq::prelude::*;

    fn probe_grid() -> Vec<Query> {
        let mut probes = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for theta in [0.05, 0.25, 0.7] {
                    probes.push(Query::new_unchecked(
                        vec![i as f64 * 0.5 - 0.25, j as f64 * 0.5 - 0.25],
                        theta,
                    ));
                }
            }
        }
        probes
    }

    fn assert_capture_matches(model: &LlmModel, snap: &ServingSnapshot) {
        assert_eq!(snap.version(), model.steps());
        assert_eq!(snap.prototypes(), model.prototypes());
        for probe in probe_grid() {
            assert_eq!(snap.predict_q1(&probe), model.predict_q1(&probe));
            assert_eq!(snap.predict_q2(&probe), model.predict_q2(&probe));
            assert_eq!(
                snap.predict_value(&probe, &probe.center),
                model.predict_value(&probe, &probe.center)
            );
            assert_eq!(snap.confidence(&probe), model.confidence(&probe));
            assert_eq!(
                snap.predict_q1_with_confidence(&probe),
                model.predict_q1_with_confidence(&probe)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn snapshots_match_the_model_at_every_publish_point_from_any_thread_count(
            pairs in prop::collection::vec(
                (prop::collection::vec(-1.0..2.0f64, 2), 0.01..0.6f64, -5.0..5.0f64),
                40..140,
            ),
            publish_every in 7usize..40,
            threads in 1usize..5,
        ) {
            let mut model = LlmModel::new(ModelConfig::paper_defaults(2)).unwrap();
            // Publish points: every `publish_every` steps, a (frozen model
            // clone, snapshot) capture pair — exactly what a trainer
            // publishes mid-stream.
            let mut captures: Vec<(LlmModel, ServingSnapshot)> = Vec::new();
            for (i, (c, r, y)) in pairs.iter().enumerate() {
                let q = Query::new_unchecked(c.clone(), *r);
                model.train_step(&q, *y).unwrap();
                if i % publish_every == 0 {
                    captures.push((model.clone(), model.snapshot()));
                }
            }
            captures.push((model.clone(), model.snapshot()));

            // Any number of concurrent readers observe every capture
            // bit-identically (thread-local serving scratch, shared
            // immutable snapshots).
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            for (m, s) in &captures {
                                assert_capture_matches(m, s);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
        }
    }
}

mod shard_equivalence {
    //! Proptest: the `ShardRouter`'s fused cross-shard answer is
    //! **bit-identical** to the unsharded `ServeEngine` over the same
    //! model — routes, values, confidence scores and Q2 lists — at 1, 2,
    //! 4 and 8 shards, including wide balls that straddle every shard
    //! boundary. This is the invariant that makes sharding a pure
    //! throughput decision: no answer may depend on the shard count.

    use proptest::prelude::*;
    use regq::prelude::*;
    use std::sync::{Arc, OnceLock};

    /// One shared dataset (exact fallback must agree too, so every engine
    /// instance wraps the same rows behind the same access path).
    fn shared_exact() -> ExactEngine {
        static DATA: OnceLock<Arc<Dataset>> = OnceLock::new();
        let data = DATA.get_or_init(|| {
            let field = GasSensorSurrogate::new(2, 5);
            let mut rng = seeded(55);
            Arc::new(Dataset::from_function(
                &field,
                8_000,
                SampleOptions::default(),
                &mut rng,
            ))
        });
        ExactEngine::new(data.clone(), AccessPathKind::KdTree)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn shard_router_answers_are_bit_identical_to_the_unsharded_engine(
            pairs in prop::collection::vec(
                (prop::collection::vec(0.0..1.0f64, 2), 0.02..0.5f64, -3.0..3.0f64),
                30..90,
            ),
            probes in prop::collection::vec(
                // Centers beyond the data domain and radii up to 1.2 (the
                // whole unit square) force boundary-straddling balls whose
                // overlap set spans several shards.
                (prop::collection::vec(-0.3..1.3f64, 2), 0.01..1.2f64),
                20..40,
            ),
        ) {
            let mut model = LlmModel::new(ModelConfig::with_vigilance(2, 0.2)).unwrap();
            for (c, r, y) in &pairs {
                model.train_step(&Query::new_unchecked(c.clone(), *r), *y).unwrap();
            }
            // Feedback off: both sides hold the published model fixed, so
            // any divergence is the fusion itself, not training drift.
            let policy = RoutePolicy { feedback: false, ..RoutePolicy::default() };
            let engine = ServeEngine::with_model(shared_exact(), model.clone(), policy);
            for shards in [1usize, 2, 4, 8] {
                let router =
                    ShardRouter::with_model(shared_exact(), model.clone(), policy, shards);
                for (c, r) in &probes {
                    let q = Query::new_unchecked(c.clone(), *r);
                    match (engine.q1(&q), router.q1(&q)) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(a.route, b.route, "q1 route at {} shards", shards);
                            prop_assert_eq!(
                                a.value.to_bits(),
                                b.value.to_bits(),
                                "q1 value at {} shards",
                                shards
                            );
                            prop_assert_eq!(
                                a.score.map(f64::to_bits),
                                b.score.map(f64::to_bits),
                                "q1 score at {} shards",
                                shards
                            );
                        }
                        (Err(ServeError::EmptySubspace), Err(ServeError::EmptySubspace)) => {}
                        (a, b) => prop_assert!(false, "q1 outcome diverged: {:?} vs {:?}", a, b),
                    }
                    match (engine.q2(&q), router.q2(&q)) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(a.route, b.route, "q2 route at {} shards", shards);
                            prop_assert_eq!(
                                a.value, b.value,
                                "q2 list at {} shards", shards
                            );
                        }
                        (Err(ServeError::EmptySubspace), Err(ServeError::EmptySubspace)) => {}
                        (a, b) => prop_assert!(false, "q2 outcome diverged: {:?} vs {:?}", a, b),
                    }
                }
            }
        }
    }
}

mod epoch_reclamation {
    //! Scripted interleavings of the `SnapshotCell` publish/read/free
    //! protocol — the epoch state machine driven **single-threaded** so
    //! every hazard window is hit deterministically on every run, with
    //! retention counted at each step. (The multi-threaded stress
    //! companion lives in `regq_serve`'s unit suite; this battery pins
    //! the protocol itself.)

    use regq::prelude::*;

    #[test]
    fn scripted_publish_between_announce_and_validate_is_caught() {
        let cell: SnapshotCell<u64> = SnapshotCell::with_snapshot(1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.retained(), 1);

        // t0: the reader announces the current epoch into its hazard slot.
        let mut r1 = cell.reader();
        r1.announce();

        // t1: the writer publishes *inside* the reader's announce→validate
        // window — the classic hazard. The announced node is pinned by the
        // slot, so the writer must retain both epochs.
        cell.publish(2);
        assert_eq!(cell.retained(), 2, "pinned epoch 1 + current epoch 2");

        // t2: validation fails (current moved since the announce), which
        // is exactly what keeps the pinned-but-stale value from being
        // served as current.
        assert!(
            r1.validate().is_none(),
            "a publish inside the announce window must fail validation"
        );

        // t3: the retry loop lands on the new epoch.
        {
            let g = r1.enter();
            assert_eq!(g.get(), Some(&2));
            assert_eq!(g.epoch(), Some(2));

            // t4: a publish while the guard pins epoch 2 frees the now
            // unpinned epoch 1 but must keep 2 (pinned) and 3 (current).
            cell.publish(3);
            assert_eq!(cell.retained(), 2, "epoch 1 freed; 2 pinned, 3 current");

            // t5: a second reader sees the new current while the first
            // still holds the old epoch — no reader blocks another.
            let mut r2 = cell.reader();
            let g2 = r2.enter();
            assert_eq!(g2.get(), Some(&3));
            assert_eq!(g2.epoch(), Some(3));
        }

        // t6: both guards dropped — reclaim frees everything but current.
        cell.reclaim();
        assert_eq!(cell.retained(), 1, "only the current epoch survives");
        assert_eq!(cell.load_owned(), Some(3));
    }

    #[test]
    fn retention_is_bounded_by_pinned_readers_plus_current() {
        let cell: SnapshotCell<u64> = SnapshotCell::new();
        assert_eq!(cell.epoch(), 0);

        // With no readers the writer self-cleans: retention never grows
        // past the current epoch no matter how many stream through.
        for v in 1..=50u64 {
            cell.publish(v);
            assert_eq!(cell.retained(), 1, "unpinned epochs must free on publish");
        }

        // Three readers pin three *distinct* epochs via their hazard
        // slots (an announce is a pin even before validation — the writer
        // may never free an announced node).
        let mut r1 = cell.reader();
        let mut r2 = cell.reader();
        let mut r3 = cell.reader();
        r1.announce(); // pins epoch 50
        cell.publish(51);
        r2.announce(); // pins epoch 51
        cell.publish(52);
        r3.announce(); // pins epoch 52
        cell.publish(53);
        assert_eq!(cell.reader_slots(), 3);
        assert_eq!(cell.retained(), 4, "three pinned epochs + current");
        assert!(
            cell.retained() <= cell.reader_slots() + 1,
            "the memory bound"
        );

        // Dropping handles retires their slots; reclaim frees their pins
        // one by one, never touching the current epoch.
        drop(r1);
        cell.reclaim();
        assert_eq!(cell.retained(), 3);
        drop(r2);
        drop(r3);
        cell.reclaim();
        assert_eq!(cell.retained(), 1);
        assert_eq!(cell.reader_slots(), 0);
        assert_eq!(cell.load_owned(), Some(53));
    }
}

#[test]
fn feedback_queue_drops_are_counted_and_surface_through_sql() {
    use regq::core::moments::{MomentPair, MomentsModel};
    use regq::sql::Session;

    // A self-contained table whose trainer can never drain: the model is
    // frozen, so queued feedback stays queued and the 1-slot queue turns
    // sustained pressure into *counted* drops (never silent ones).
    let field = GasSensorSurrogate::new(2, 13);
    let mut rng = seeded(17);
    let ds = Dataset::from_function(&field, 5_000, SampleOptions::default(), &mut rng);
    let engine = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);

    let cfg = ModelConfig::with_vigilance(2, 0.15);
    let mut model = LlmModel::new(cfg.clone()).unwrap();
    let q0 = Query::new_unchecked(vec![0.5, 0.5], 0.1);
    model.train_step(&q0, 0.0).unwrap();
    model.freeze();
    let mut moments = MomentsModel::new(cfg).unwrap();
    moments
        .train_step(
            &q0,
            MomentPair {
                mean: 0.0,
                variance: 1.0,
            },
        )
        .unwrap();

    let mut session = Session::new();
    session.register_table_with_policy(
        "readings",
        engine,
        RoutePolicy {
            confidence_threshold: 2.0, // force exact routing; feedback still flows
            feedback: true,
            publish_interval: 64,
            ..RoutePolicy::default()
        },
    );
    session.register_model("readings", model).unwrap();
    session.register_moments_model("readings", moments).unwrap();
    session.set_feedback_queue_capacity("readings", 1).unwrap();

    let sql = "SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2";
    let first = session.execute(sql).unwrap();
    assert_eq!(first.route, Route::Exact);
    assert!(
        !first.feedback_dropped,
        "the first example fits the 1-slot queue"
    );
    let second = session.execute(sql).unwrap();
    assert!(
        second.feedback_dropped,
        "overflow must surface on the answer, not vanish"
    );
    let stats = session.router("readings").unwrap().stats();
    assert_eq!(stats.feedback_enqueued, 1);
    assert!(stats.feedback_dropped >= 1, "drops must be counted");
}

mod fault_injection {
    //! The PR 8 fault battery: scripted, deterministic injections through
    //! the facade proving each fault class *recovers* — no wrong answers,
    //! no silent losses. Non-degraded routes stay bit-identical to a
    //! fault-free twin; degraded serves are always flagged
    //! [`Route::Degraded`]; every firing is answered by a counted
    //! restart/heal/retry in the stats.

    use regq::prelude::*;
    use regq::workload::{drift_recovery_loop, ShiftingValley};
    use std::sync::{Arc, OnceLock};

    fn shared_data() -> Arc<Dataset> {
        static DATA: OnceLock<Arc<Dataset>> = OnceLock::new();
        DATA.get_or_init(|| {
            let field = GasSensorSurrogate::new(2, 9);
            let mut rng = seeded(71);
            Arc::new(Dataset::from_function(
                &field,
                20_000,
                SampleOptions::default(),
                &mut rng,
            ))
        })
        .clone()
    }

    fn exact() -> ExactEngine {
        ExactEngine::new(shared_data(), AccessPathKind::KdTree)
    }

    /// A converged model over the shared data (frozen by the callers
    /// that need training pinned).
    fn trained_model() -> LlmModel {
        static MODEL: OnceLock<LlmModel> = OnceLock::new();
        MODEL
            .get_or_init(|| {
                let engine = exact();
                let mut rng = seeded(72);
                let mut cfg = ModelConfig::with_vigilance(2, 0.15);
                cfg.gamma = 1e-3;
                let mut model = LlmModel::new(cfg).unwrap();
                let gen = QueryGenerator::new(vec![(0.0, 1.0), (0.0, 1.0)], 0.1, 0.1, 1.0);
                for _ in 0..30_000 {
                    let q = gen.generate(&mut rng);
                    if let Some(y) = engine.q1(&q.center, q.radius) {
                        if model.train_step(&q, y).unwrap().converged {
                            break;
                        }
                    }
                }
                model
            })
            .clone()
    }

    fn probes() -> Vec<Query> {
        let mut probes = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                for theta in [0.05, 0.15, 0.45] {
                    probes.push(Query::new_unchecked(
                        vec![0.1 + i as f64 * 0.2, 0.1 + j as f64 * 0.2],
                        theta,
                    ));
                }
            }
        }
        probes
    }

    #[test]
    fn injected_trainer_panics_recover_in_the_live_closed_loop() {
        // Silence the supervisor-caught injected panics' default-hook
        // spam (the test stays single-threaded and deterministic).
        std::panic::set_hook(Box::new(|_| {}));
        let mut router = ShardRouter::with_model(
            exact(),
            LlmModel::new(ModelConfig::with_vigilance(2, 0.08)).unwrap(),
            RoutePolicy {
                confidence_threshold: 0.3,
                feedback: true,
                publish_interval: 32,
                ..RoutePolicy::default()
            },
            2,
        );
        router.set_fault_plan(FaultPlan::seeded(&[FaultKind::TrainerPanic], 99, 500, 4));
        let valley = ShiftingValley {
            start: vec![0.3, 0.3],
            end: vec![0.7, 0.7],
            radius_min: 0.08,
            radius_max: 0.16,
            jitter: 0.08,
            drift_at: 1_500,
            drift_len: 300,
        };
        let report = drift_recovery_loop(&router, &valley, 4_000, 200, 101);
        let _ = std::panic::take_hook();
        let stats = router.stats();
        assert!(stats.trainer_panics > 0, "the seeded plan never fired");
        assert_eq!(
            stats.trainer_restarts, stats.trainer_panics,
            "every panic must be answered by a counted restart"
        );
        assert_eq!(
            router.quarantined().len(),
            stats.trainer_panics as usize,
            "every poisonous example must be retrievable"
        );
        assert!(
            report.recovered_at.is_some(),
            "the supervised loop must still recover from drift: {report:?}"
        );
    }

    #[test]
    fn a_stalled_publish_never_blocks_serving() {
        let mut model = trained_model();
        model.freeze();
        let mut engine = ServeEngine::with_model(
            exact(),
            model,
            RoutePolicy {
                feedback: false,
                ..RoutePolicy::default()
            },
        );
        let probe = Query::new_unchecked(vec![0.5, 0.5], 0.15);
        // Serve once first: this registers the main thread's hazard-slot
        // reader, which is what lets it ignore the wedged writer below.
        let before = engine.q1(&probe).unwrap();
        assert_eq!(before.route, Route::Model);
        let (plan, gate) = FaultPlan::new()
            .inject(FaultKind::PublishStall, &[1])
            .with_publish_gate();
        engine.set_fault_plan(plan.clone());
        let engine = &engine;
        std::thread::scope(|scope| {
            let writer = scope.spawn(move || engine.publish_now());
            while plan.fired(FaultKind::PublishStall) == 0 {
                std::hint::spin_loop();
            }
            // The writer is wedged mid-publish holding the cell's state
            // lock; the serve path must keep answering from the current
            // snapshot, bit-identically.
            for _ in 0..100 {
                let served = engine.q1(&probe).unwrap();
                assert_eq!(served.route, Route::Model);
                assert_eq!(served.value.to_bits(), before.value.to_bits());
                assert_eq!(served.snapshot_version, before.snapshot_version);
            }
            gate.release();
            writer.join().unwrap();
        });
    }

    #[test]
    fn overflow_bursts_surface_through_sql_until_given_a_retry_budget() {
        use regq::sql::Session;
        let mut model = trained_model();
        model.freeze();
        let mut session = Session::new();
        session.register_table_with_policy(
            "readings",
            exact(),
            RoutePolicy {
                confidence_threshold: 2.0, // force exact; feedback flows
                feedback: true,
                publish_interval: 64,
                ..RoutePolicy::default()
            },
        );
        session.register_model("readings", model).unwrap();
        session
            .set_fault_plan(
                "readings",
                FaultPlan::new().inject(FaultKind::QueueOverflow, &[1]),
            )
            .unwrap();
        let sql = "SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2";
        let burst = session.execute(sql).unwrap();
        assert_eq!(burst.route, Route::Exact, "the answer itself is exact");
        assert!(
            burst.feedback_dropped,
            "with no retry budget the burst must surface as a drop"
        );
        let calm = session.execute(sql).unwrap();
        assert!(!calm.feedback_dropped, "the burst is over");
        let stats = session.router("readings").unwrap().stats();
        assert_eq!(stats.feedback_dropped, 1);
        // The same burst with a retry budget is absorbed invisibly.
        let mut patient = Session::new();
        patient.register_table_with_policy(
            "patient",
            exact(),
            RoutePolicy {
                confidence_threshold: 2.0,
                feedback: true,
                publish_interval: 64,
                overflow_retries: 2,
                ..RoutePolicy::default()
            },
        );
        patient
            .set_fault_plan(
                "patient",
                FaultPlan::new().inject(FaultKind::QueueOverflow, &[1]),
            )
            .unwrap();
        let sql = "SELECT AVG(u) FROM patient WHERE DIST(x, [0.5, 0.5]) <= 0.2";
        let absorbed = patient.execute(sql).unwrap();
        assert!(!absorbed.feedback_dropped, "the retry must absorb it");
        let stats = patient.router("patient").unwrap().stats();
        assert_eq!(stats.feedback_dropped, 0);
        assert!(stats.feedback_retried >= 1, "retries must be counted");
    }

    #[test]
    fn fault_battery_answers_match_the_fault_free_twin_bit_for_bit() {
        let mut model = trained_model();
        model.freeze(); // pin training: divergence would be a serving bug
        let free = ShardRouter::with_model(
            exact(),
            model.clone(),
            RoutePolicy {
                feedback: true,
                ..RoutePolicy::default()
            },
            2,
        );
        let mut armed = ShardRouter::with_model(
            exact(),
            model,
            RoutePolicy {
                feedback: true,
                deadline_us: Some(50.0), // the hint below trips this
                overflow_retries: 1,
                ..RoutePolicy::default()
            },
            2,
        );
        armed.set_fault_plan(
            FaultPlan::seeded(
                &[FaultKind::LockPoison, FaultKind::QueueOverflow],
                13,
                40,
                3,
            )
            .with_exact_cost_hint_us(1e6),
        );
        std::panic::set_hook(Box::new(|_| {})); // injected poisoners
        let mut degraded = 0usize;
        for probe in probes() {
            match (free.q1(&probe), armed.q1(&probe)) {
                (Ok(f), Ok(a)) if a.route == Route::Degraded => {
                    degraded += 1;
                    // A degraded serve is the *flagged* fused snapshot
                    // answer — provably right, not approximately right.
                    assert_eq!(f.route, Route::Exact, "both gates saw the same score");
                    let reference = armed.q1_model(&probe).unwrap();
                    assert_eq!(a.value.to_bits(), reference.value.to_bits());
                }
                (Ok(f), Ok(a)) => {
                    assert_eq!(f.route, a.route, "routes diverged at {probe:?}");
                    assert_eq!(f.value.to_bits(), a.value.to_bits());
                    assert_eq!(f.score.map(f64::to_bits), a.score.map(f64::to_bits));
                }
                (Err(ServeError::EmptySubspace), Err(ServeError::EmptySubspace)) => {}
                (f, a) => panic!("outcomes diverged: {f:?} vs {a:?}"),
            }
        }
        let _ = std::panic::take_hook();
        assert!(degraded > 0, "the deadline budget never tripped");
        let stats = armed.stats();
        assert_eq!(stats.degraded_served, degraded as u64);
        assert_eq!(
            stats.trainer_restarts, stats.lock_poisonings,
            "every poisoning healed by a counted restart (and nothing else fired)"
        );
        assert_eq!(stats.trainer_panics, 0, "frozen trainers cannot panic");
        assert_eq!(
            stats.feedback_dropped, 0,
            "retry budget must absorb the bursts"
        );
        assert_eq!(free.stats().degraded_served, 0);
    }
}
