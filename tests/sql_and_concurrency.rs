//! Integration tests for the declarative front end and concurrent serving
//! through the facade crate.

use regq::core::moments::{MomentPair, MomentsModel};
use regq::prelude::*;
use regq::sql::{QueryOutput, Session, SqlError};
use std::sync::Arc;
use std::sync::OnceLock;

struct Fix {
    session: Session,
    model: LlmModel,
    engine_rows: usize,
}

fn fixture() -> &'static Fix {
    static FIX: OnceLock<Fix> = OnceLock::new();
    FIX.get_or_init(|| {
        let field = GasSensorSurrogate::new(2, 21);
        let mut rng = seeded(2);
        let ds = Dataset::from_function(&field, 30_000, SampleOptions::default(), &mut rng);
        let rows = ds.len();
        let engine = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);
        let gen = QueryGenerator::for_function(&field, 0.1);

        let mut cfg = ModelConfig::with_vigilance(2, 0.15);
        cfg.gamma = 1e-3;
        let mut model = LlmModel::new(cfg.clone()).unwrap();
        let mut moments = MomentsModel::new(cfg).unwrap();
        for _ in 0..50_000 {
            let q = gen.generate(&mut rng);
            if let Some(mo) = engine.q1_moments(&q.center, q.radius) {
                let a = model.train_step(&q, mo.mean).unwrap().converged;
                let b = moments
                    .train_step(
                        &q,
                        MomentPair {
                            mean: mo.mean,
                            variance: mo.variance,
                        },
                    )
                    .unwrap();
                if a && b {
                    break;
                }
            }
        }

        let mut session = Session::new();
        session.register_table("readings", engine);
        session.register_model("readings", model.clone()).unwrap();
        session.register_moments_model("readings", moments).unwrap();
        Fix {
            session,
            model,
            engine_rows: rows,
        }
    })
}

#[test]
fn sql_exact_and_model_answers_agree() {
    let f = fixture();
    let exact = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.15")
        .unwrap();
    let served = f
        .session
        .execute("SELECT AVG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.15 USING MODEL")
        .unwrap();
    let (QueryOutput::Scalar(e), QueryOutput::Scalar(m)) = (exact, served) else {
        panic!("expected scalars");
    };
    assert!((e - m).abs() < 0.12, "exact {e} vs model {m}");
}

#[test]
fn sql_linreg_list_is_weight_normalized() {
    let f = fixture();
    let out = f
        .session
        .execute("SELECT LINREG(u) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 0.2 USING MODEL")
        .unwrap();
    let QueryOutput::Regression(list) = out else {
        panic!("expected regression list");
    };
    assert!(!list.is_empty());
    let wsum: f64 = list.iter().map(|m| m.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-9);
}

#[test]
fn sql_count_matches_engine_row_semantics() {
    let f = fixture();
    let QueryOutput::Count(n) = f
        .session
        .execute("SELECT COUNT(*) FROM readings WHERE DIST(x, [0.5, 0.5]) <= 10.0")
        .unwrap()
    else {
        panic!("expected count");
    };
    assert_eq!(n, f.engine_rows, "whole-domain ball must count every row");
}

#[test]
fn sql_errors_are_structured() {
    let f = fixture();
    assert!(matches!(
        f.session
            .execute("SELECT AVG(u) FROM nope WHERE DIST(x, [0.5, 0.5]) <= 0.1"),
        Err(SqlError::UnknownTable(_))
    ));
    assert!(matches!(
        f.session.execute("this is not sql"),
        Err(SqlError::Parse(_))
    ));
}

#[test]
fn frozen_model_serves_concurrently_with_identical_answers() {
    let f = fixture();
    let model = &f.model;
    let gen = QueryGenerator::new(vec![(0.0, 1.0); 2], 0.1, 0.05, 1.0);
    let mut rng = seeded(7);
    let queries = gen.generate_many(512, &mut rng);
    let reference: Vec<f64> = queries
        .iter()
        .map(|q| model.predict_q1(q).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    queries
                        .iter()
                        .map(|q| model.predict_q1(q).unwrap())
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference);
        }
    });
}

#[test]
fn parallel_serving_throughput_beats_exact() {
    use regq::workload::{exact_q1_throughput, model_q1_throughput};
    let f = fixture();
    let field = GasSensorSurrogate::new(2, 21);
    let mut rng = seeded(9);
    let ds = Dataset::from_function(&field, 30_000, SampleOptions::default(), &mut rng);
    let engine = ExactEngine::new(Arc::new(ds), AccessPathKind::KdTree);
    let gen = QueryGenerator::for_function(&field, 0.1);
    let queries = gen.generate_many(2_000, &mut rng);
    let m = model_q1_throughput(&f.model, &queries, 4);
    let e = exact_q1_throughput(&engine, &queries, 4);
    assert!(
        m.qps() > 3.0 * e.qps(),
        "model {} qps vs exact {} qps",
        m.qps(),
        e.qps()
    );
}
